#include "serve/socket.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <new>
#include <ostream>
#include <string_view>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "data/binary_io.hh"
#include "util/socket_io.hh"

namespace wct::serve
{

namespace
{

/** epoll user-data tags of the two non-connection descriptors;
 * connection ids start at 2 and are never reused. */
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;

/** Envelope header: magic(8) + version(u32) + size(u64). */
constexpr std::size_t kHeaderBytes = 20;

/** Trailing FNV-1a checksum. */
constexpr std::size_t kChecksumBytes = 8;

std::uint32_t
readLe32(const std::string &bytes, std::size_t at)
{
    std::uint32_t v = 0;
    std::memcpy(&v, bytes.data() + at, sizeof v);
    return v; // envelopes are little-endian, as is every target ABI
}

std::uint64_t
readLe64(const std::string &bytes, std::size_t at)
{
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data() + at, sizeof v);
    return v;
}

} // namespace

SocketServer::SocketServer(FrameHandler &handler, SocketConfig config)
    : handler_(handler), config_(std::move(config))
{
}

SocketServer::~SocketServer()
{
    stop();
}

bool
SocketServer::start(std::string *err)
{
    if (!config_.unixPath.empty())
        listenFd_ =
            listenUnix(config_.unixPath, config_.backlog, err);
    else
        listenFd_ = listenTcp(config_.tcpPort, config_.backlog,
                              &boundPort_, err);
    if (listenFd_ < 0)
        return false;

    epollFd_ = ::epoll_create1(0);
    wakeFd_ = ::eventfd(0, EFD_NONBLOCK);
    if (epollFd_ < 0 || wakeFd_ < 0 ||
        !setNonBlocking(listenFd_)) {
        if (err != nullptr)
            *err = std::string("cannot set up event loop: ") +
                   std::strerror(errno);
        closeFd(epollFd_);
        closeFd(wakeFd_);
        closeFd(listenFd_);
        epollFd_ = wakeFd_ = listenFd_ = -1;
        return false;
    }
    epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenTag;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev);

    const std::size_t workers =
        std::max<std::size_t>(1, config_.dispatchThreads);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    reactorThread_ = std::thread([this] { reactorLoop(); });
    return true;
}

void
SocketServer::wakeReactor()
{
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wakeFd_, &one, sizeof one);
}

void
SocketServer::workerLoop()
{
    for (;;) {
        Work work;
        {
            std::unique_lock lock(workMutex_);
            workCv_.wait(lock, [this] {
                return workClosed_ || !work_.empty();
            });
            if (work_.empty())
                return; // closed and drained
            work = std::move(work_.front());
            work_.pop_front();
        }
        std::string frame;
        try {
            frame = handler_.handlePayload(work.payload);
        } catch (const std::bad_alloc &) {
            // Even capped frames can fail to allocate under memory
            // pressure; one client's frame must drop its
            // connection, not the server.
            frame = handler_.malformedResponse(
                "out of memory handling frame");
        }
        {
            std::lock_guard lock(completionMutex_);
            completions_.push_back({work.conn, std::move(frame)});
        }
        wakeReactor();
    }
}

void
SocketServer::handleAccept(bool draining)
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN: the backlog is drained
        // Registration is synchronous with accept, so a client whose
        // previous call completed is guaranteed to occupy its slot
        // before the next connection is considered against the cap.
        if (draining || conns_.size() >= config_.maxConnections ||
            !setNonBlocking(fd)) {
            closeFd(fd); // client sees EOF: connection backpressure
            continue;
        }
        const std::uint64_t id = nextConnId_++;
        Conn &conn = conns_[id];
        conn.fd = fd;
        updateInterest(id, conn);
    }
}

void
SocketServer::markMalformed(Conn &conn, const char *reason)
{
    // One diagnostic response, then drop: framing cannot resync
    // inside a byte stream. Whatever was buffered is garbage now.
    try {
        conn.out += handler_.malformedResponse(reason);
    } catch (const std::bad_alloc &) {
        // Can't even build the response; just close after what is
        // already queued.
    }
    conn.in.clear();
    conn.readClosed = true;
    conn.closeAfterFlush = true;
}

void
SocketServer::parseFrames(std::uint64_t id, Conn &conn)
{
    // Incremental reassembly: validate each envelope field as soon
    // as its bytes are in, so hostile prefixes fail fast and a
    // claimed size above the cap is refused before buffering a
    // "frame" that would never end.
    while (!conn.busy && !conn.closeAfterFlush) {
        const std::size_t have = conn.in.size();
        if (have == 0)
            break;
        const std::size_t prefix = std::min<std::size_t>(have, 8);
        if (std::memcmp(conn.in.data(), config_.frameMagic.data(),
                        prefix) != 0) {
            markMalformed(conn, "bad frame envelope (magic, "
                                "version, size, or checksum)");
            break;
        }
        if (have < 12)
            break;
        if (readLe32(conn.in, 8) != config_.frameVersion) {
            markMalformed(conn, "bad frame envelope (magic, "
                                "version, size, or checksum)");
            break;
        }
        if (have < kHeaderBytes)
            break;
        const std::uint64_t size = readLe64(conn.in, 12);
        if (size > config_.maxFramePayload) {
            markMalformed(conn, "bad frame envelope (magic, "
                                "version, size, or checksum)");
            break;
        }
        const std::size_t total =
            kHeaderBytes + static_cast<std::size_t>(size) +
            kChecksumBytes;
        if (have < total)
            break; // incomplete: wait for more bytes
        const std::string_view payload(
            conn.in.data() + kHeaderBytes,
            static_cast<std::size_t>(size));
        if (fnv1a64(payload) !=
            readLe64(conn.in, kHeaderBytes +
                                  static_cast<std::size_t>(size))) {
            markMalformed(conn, "bad frame envelope (magic, "
                                "version, size, or checksum)");
            break;
        }
        Work work;
        work.conn = id;
        work.payload.assign(payload);
        conn.in.erase(0, total);
        conn.busy = true; // flow control: no reads until completion
        {
            std::lock_guard lock(workMutex_);
            work_.push_back(std::move(work));
        }
        workCv_.notify_one();
    }
}

bool
SocketServer::flushConn(Conn &conn)
{
    while (conn.outOff < conn.out.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data() + conn.outOff,
                   conn.out.size() - conn.outOff, MSG_NOSIGNAL);
        if (n > 0) {
            conn.outOff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true; // kernel buffer full: EPOLLOUT will resume
        return false; // peer is gone; drop the connection
    }
    conn.out.clear();
    conn.outOff = 0;
    return true;
}

void
SocketServer::handleReadable(std::uint64_t id, Conn &conn)
{
    char buffer[65536];
    while (!conn.busy && !conn.readClosed && !conn.closeAfterFlush) {
        const ssize_t n = ::recv(conn.fd, buffer, sizeof buffer, 0);
        if (n > 0) {
            try {
                conn.in.append(buffer,
                               static_cast<std::size_t>(n));
            } catch (const std::bad_alloc &) {
                markMalformed(conn,
                              "out of memory handling frame");
                return;
            }
            // Parsing as bytes arrive engages per-connection flow
            // control the moment a complete frame is dispatched.
            parseFrames(id, conn);
            continue;
        }
        if (n == 0) {
            conn.readClosed = true;
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        conn.readClosed = true; // hard error: treat as EOF
        return;
    }
}

void
SocketServer::pump(std::uint64_t id, Conn &conn)
{
    if (!conn.busy && !conn.closeAfterFlush) {
        parseFrames(id, conn);
        // A clean EOF between frames is a normal disconnect; EOF
        // with a partial frame buffered earns the one diagnostic
        // response (the stream was truncated mid-frame).
        if (!conn.busy && !conn.closeAfterFlush && conn.readClosed) {
            if (!conn.in.empty())
                markMalformed(conn,
                              "bad frame envelope (magic, version, "
                              "size, or checksum)");
            else
                conn.closeAfterFlush = true;
        }
    }
    if (!flushConn(conn)) {
        closeConn(id);
        return;
    }
    if (conn.closeAfterFlush && !conn.busy &&
        conn.outOff >= conn.out.size()) {
        closeConn(id);
        return;
    }
    updateInterest(id, conn);
}

void
SocketServer::updateInterest(std::uint64_t id, Conn &conn)
{
    std::uint32_t want = 0;
    if (!conn.busy && !conn.readClosed && !conn.closeAfterFlush)
        want |= EPOLLIN;
    if (conn.outOff < conn.out.size())
        want |= EPOLLOUT;

    epoll_event ev = {};
    ev.events = want;
    ev.data.u64 = id;
    if (!conn.registered) {
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, conn.fd, &ev) == 0) {
            conn.registered = true;
            conn.interest = want;
        }
        return;
    }
    if (want == 0 && conn.readClosed) {
        // Nothing to read or write and the peer can only HUP us
        // (delivered even on an empty mask): drop the fd from the
        // set so a busy connection with a vanished peer does not
        // spin the loop until its completion arrives.
        ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn.fd, nullptr);
        conn.registered = false;
        conn.interest = 0;
        return;
    }
    if (want != conn.interest &&
        ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
        conn.interest = want;
}

void
SocketServer::closeConn(std::uint64_t id)
{
    const auto it = conns_.find(id);
    if (it == conns_.end())
        return;
    if (it->second.registered)
        ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
    closeFd(it->second.fd);
    conns_.erase(it);
}

void
SocketServer::drainCompletions()
{
    std::deque<Completion> done;
    {
        std::lock_guard lock(completionMutex_);
        done.swap(completions_);
    }
    for (Completion &completion : done) {
        const auto it = conns_.find(completion.conn);
        if (it == conns_.end())
            continue; // connection died while the handler ran
        Conn &conn = it->second;
        conn.busy = false;
        try {
            conn.out += completion.frame;
        } catch (const std::bad_alloc &) {
            closeConn(completion.conn);
            continue;
        }
        if (stopping_.load(std::memory_order_acquire) ||
            handler_.shuttingDown()) {
            // The response just queued (e.g. the shutdown ack) still
            // flushes to its client before the close.
            conn.readClosed = true;
            conn.in.clear();
            conn.closeAfterFlush = true;
        }
        pump(completion.conn, conn);
    }
}

void
SocketServer::beginDrainPass()
{
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto &[id, conn] : conns_)
        ids.push_back(id);
    for (const std::uint64_t id : ids) {
        const auto it = conns_.find(id);
        if (it == conns_.end())
            continue;
        Conn &conn = it->second;
        if (conn.busy)
            continue; // its completion will close it
        conn.readClosed = true;
        pump(id, conn);
    }
}

void
SocketServer::reactorLoop()
{
    bool accepting = true;
    std::vector<epoll_event> events(64);
    for (;;) {
        const bool draining =
            stopping_.load(std::memory_order_acquire) ||
            handler_.shuttingDown();
        if (draining && accepting) {
            ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
            accepting = false;
        }
        if (draining) {
            beginDrainPass();
            if (conns_.empty())
                break;
        }
        const int ready =
            ::epoll_wait(epollFd_, events.data(),
                         static_cast<int>(events.size()),
                         /*timeout_ms=*/100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < ready; ++i) {
            const std::uint64_t id = events[i].data.u64;
            const std::uint32_t got = events[i].events;
            if (id == kListenTag) {
                handleAccept(draining);
                continue;
            }
            if (id == kWakeTag) {
                std::uint64_t drained = 0;
                [[maybe_unused]] const ssize_t n = ::read(
                    wakeFd_, &drained, sizeof drained);
                continue;
            }
            const auto it = conns_.find(id);
            if (it == conns_.end())
                continue; // closed earlier in this same batch
            Conn &conn = it->second;
            if (got & EPOLLERR) {
                closeConn(id);
                continue;
            }
            if (got & (EPOLLIN | EPOLLHUP))
                handleReadable(id, conn);
            pump(id, conn);
        }
        drainCompletions();
    }
    for (auto &[id, conn] : conns_) {
        if (conn.registered)
            ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn.fd, nullptr);
        closeFd(conn.fd);
    }
    conns_.clear();
    {
        std::lock_guard lock(finishedMutex_);
        finished_ = true;
    }
    finishedCv_.notify_all();
}

void
SocketServer::stop()
{
    if (listenFd_ < 0)
        return;
    stopping_.store(true, std::memory_order_release);
    wakeReactor();
    if (reactorThread_.joinable())
        reactorThread_.join();
    {
        std::lock_guard lock(workMutex_);
        workClosed_ = true;
    }
    workCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
    closeFd(epollFd_);
    epollFd_ = -1;
    closeFd(wakeFd_);
    wakeFd_ = -1;
    closeFd(listenFd_);
    listenFd_ = -1;
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
}

void
SocketServer::waitForShutdown()
{
    if (listenFd_ < 0)
        return;
    // The reactor exits on its own once the handler starts draining
    // and the last connection flushed its final response.
    {
        std::unique_lock lock(finishedMutex_);
        finishedCv_.wait(lock, [this] { return finished_; });
    }
    stop();
}

ServeClient::~ServeClient()
{
    closeFd(fd_);
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd_(other.fd_), timedOut_(other.timedOut_)
{
    other.fd_ = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        closeFd(fd_);
        fd_ = other.fd_;
        timedOut_ = other.timedOut_;
        other.fd_ = -1;
    }
    return *this;
}

std::optional<ServeClient>
ServeClient::connectUnix(const std::string &path, std::string *err)
{
    const int fd = wct::connectUnix(path, err);
    if (fd < 0)
        return std::nullopt;
    return ServeClient(fd);
}

std::optional<ServeClient>
ServeClient::connectTcp(int port, std::string *err)
{
    const int fd = wct::connectTcp(port, err);
    if (fd < 0)
        return std::nullopt;
    return ServeClient(fd);
}

void
ServeClient::setTimeoutMs(std::uint64_t ms)
{
    setSocketTimeoutMs(fd_, ms);
}

std::optional<Response>
ServeClient::call(const Request &request, std::string *err)
{
    timedOut_ = false;
    FdStreambuf buf(fd_);
    std::ostream out(&buf);
    std::istream in(&buf);
    writeFrame(out, encodeRequest(request));
    if (!out) {
        if (err != nullptr)
            *err = "write failed (server closed the connection?)";
        return std::nullopt;
    }
    errno = 0;
    const auto payload = readFrame(in);
    if (!payload) {
        // A socket deadline armed by setTimeoutMs surfaces as EAGAIN
        // on the read underneath the failed frame.
        timedOut_ = errno == EAGAIN || errno == EWOULDBLOCK;
        if (err != nullptr)
            *err = timedOut_
                       ? "timed out waiting for the response"
                       : "no response (connection closed or corrupt "
                         "frame)";
        return std::nullopt;
    }
    std::string decode_err;
    auto response = decodeResponse(*payload, &decode_err);
    if (!response) {
        if (err != nullptr)
            *err = decode_err;
        return std::nullopt;
    }
    return response;
}

} // namespace wct::serve
