#include "serve/socket.hh"

#include <istream>
#include <new>
#include <ostream>

#include <poll.h>
#include <sys/socket.h>

#include "data/binary_io.hh"
#include "util/socket_io.hh"

namespace wct::serve
{

SocketServer::SocketServer(FrameHandler &handler, SocketConfig config)
    : handler_(handler), config_(std::move(config))
{
}

SocketServer::~SocketServer()
{
    stop();
}

bool
SocketServer::start(std::string *err)
{
    if (!config_.unixPath.empty())
        listenFd_ =
            listenUnix(config_.unixPath, config_.backlog, err);
    else
        listenFd_ = listenTcp(config_.tcpPort, config_.backlog,
                              &boundPort_, err);
    if (listenFd_ < 0)
        return false;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
SocketServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire) &&
           !handler_.shuttingDown()) {
        reapFinished();
        pollfd pfd = {listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
        if (ready <= 0)
            continue; // timeout (re-check flags) or EINTR
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard lock(connectionsMutex_);
        if (handler_.shuttingDown() ||
            connections_.size() >= config_.maxConnections) {
            closeFd(fd); // client sees EOF: connection-level backpressure
            continue;
        }
        connections_.emplace_back();
        const auto conn = std::prev(connections_.end());
        conn->fd = fd;
        conn->thread =
            std::thread([this, conn] { connectionLoop(conn); });
    }
}

void
SocketServer::connectionLoop(std::list<Connection>::iterator conn)
{
    const int fd = conn->fd;
    FdStreambuf buf(fd);
    std::istream in(&buf);
    std::ostream out(&buf);
    try {
        while (true) {
            const auto payload =
                readEnvelope(in, config_.frameMagic,
                             config_.frameVersion,
                             config_.maxFramePayload);
            if (!payload) {
                // A clean EOF between frames is a normal disconnect;
                // any other framing failure earns one diagnostic
                // response (framing cannot resync, so the connection
                // closes).
                if (!in.eof() || in.gcount() != 0)
                    writeFrame(out, handler_.malformedResponse(
                                        "bad frame envelope (magic, "
                                        "version, size, or "
                                        "checksum)"));
                break;
            }
            writeFrame(out, handler_.handlePayload(*payload));
            if (handler_.shuttingDown())
                break; // response (e.g. the shutdown ack) was sent
        }
    } catch (const std::bad_alloc &) {
        // Even capped frames can fail to allocate under memory
        // pressure; one client's frame must drop the connection, not
        // the server.
        writeFrame(out, handler_.malformedResponse(
                            "out of memory handling frame"));
    }
    // Park the thread handle for the accept loop (or stop()) to
    // join — a thread cannot join itself. The fd is closed only
    // after the node leaves connections_, so shutdownReads can never
    // touch a closed (possibly recycled) descriptor.
    {
        std::lock_guard lock(connectionsMutex_);
        finished_.splice(finished_.end(), connections_, conn);
        connectionsCv_.notify_all();
    }
    closeFd(fd);
}

void
SocketServer::reapFinished()
{
    // Splice out under the lock, join outside it: the joined threads
    // have already done their exit bookkeeping (the splice above).
    std::list<Connection> done;
    {
        std::lock_guard lock(connectionsMutex_);
        done.splice(done.end(), finished_);
    }
    for (Connection &conn : done)
        conn.thread.join();
}

void
SocketServer::shutdownReads()
{
    std::lock_guard lock(connectionsMutex_);
    for (Connection &conn : connections_)
        ::shutdown(conn.fd, SHUT_RD);
}

void
SocketServer::stop()
{
    if (listenFd_ < 0)
        return;
    stopping_.store(true, std::memory_order_release);
    if (acceptThread_.joinable())
        acceptThread_.join();
    // SHUT_RD — not RDWR — wakes connections parked in read (they
    // see EOF) while an in-flight response can still drain to its
    // client; each worker then finishes its current request, writes
    // the response, and parks itself on the finished list.
    shutdownReads();
    {
        std::unique_lock lock(connectionsMutex_);
        connectionsCv_.wait(
            lock, [this] { return connections_.empty(); });
    }
    reapFinished();
    closeFd(listenFd_);
    listenFd_ = -1;
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
}

void
SocketServer::waitForShutdown()
{
    // The accept thread exits once the handler starts draining (it
    // re-checks every poll timeout); connections finish their last
    // response on their own. stop() then closes any idle ones.
    if (acceptThread_.joinable())
        acceptThread_.join();
    stop();
}

ServeClient::~ServeClient()
{
    closeFd(fd_);
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        closeFd(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

std::optional<ServeClient>
ServeClient::connectUnix(const std::string &path, std::string *err)
{
    const int fd = wct::connectUnix(path, err);
    if (fd < 0)
        return std::nullopt;
    return ServeClient(fd);
}

std::optional<ServeClient>
ServeClient::connectTcp(int port, std::string *err)
{
    const int fd = wct::connectTcp(port, err);
    if (fd < 0)
        return std::nullopt;
    return ServeClient(fd);
}

std::optional<Response>
ServeClient::call(const Request &request, std::string *err)
{
    FdStreambuf buf(fd_);
    std::ostream out(&buf);
    std::istream in(&buf);
    writeFrame(out, encodeRequest(request));
    if (!out) {
        if (err != nullptr)
            *err = "write failed (server closed the connection?)";
        return std::nullopt;
    }
    const auto payload = readFrame(in);
    if (!payload) {
        if (err != nullptr)
            *err = "no response (connection closed or corrupt "
                   "frame)";
        return std::nullopt;
    }
    std::string decode_err;
    auto response = decodeResponse(*payload, &decode_err);
    if (!response) {
        if (err != nullptr)
            *err = decode_err;
        return std::nullopt;
    }
    return response;
}

} // namespace wct::serve
