#include "serve/socket.hh"

#include <cerrno>
#include <cstring>
#include <istream>
#include <new>
#include <ostream>
#include <streambuf>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"

namespace wct::serve
{

namespace
{

/**
 * Minimal buffered std::streambuf over a socket descriptor, so the
 * envelope readers/writers of wire.hh work on a connection exactly
 * as they do on a file. Reads block; shutdown is delivered by
 * ::shutdown on the fd, which turns the parked read into EOF.
 */
class FdStreambuf : public std::streambuf
{
  public:
    explicit FdStreambuf(int fd) : fd_(fd)
    {
        setg(inBuf_, inBuf_, inBuf_);
        setp(outBuf_, outBuf_ + sizeof outBuf_);
    }

  protected:
    int_type
    underflow() override
    {
        if (gptr() < egptr())
            return traits_type::to_int_type(*gptr());
        ssize_t n;
        do {
            n = ::read(fd_, inBuf_, sizeof inBuf_);
        } while (n < 0 && errno == EINTR);
        if (n <= 0)
            return traits_type::eof();
        setg(inBuf_, inBuf_, inBuf_ + n);
        return traits_type::to_int_type(*gptr());
    }

    int_type
    overflow(int_type ch) override
    {
        if (flushOut() != 0)
            return traits_type::eof();
        if (!traits_type::eq_int_type(ch, traits_type::eof())) {
            *pptr() = traits_type::to_char_type(ch);
            pbump(1);
        }
        return traits_type::not_eof(ch);
    }

    int
    sync() override
    {
        return flushOut();
    }

  private:
    int
    flushOut()
    {
        const char *data = pbase();
        std::size_t left = static_cast<std::size_t>(pptr() - pbase());
        while (left > 0) {
            ssize_t n;
            do {
                // MSG_NOSIGNAL: a peer that already closed must
                // surface as an EPIPE error here, not as a
                // process-wide SIGPIPE.
                n = ::send(fd_, data, left, MSG_NOSIGNAL);
            } while (n < 0 && errno == EINTR);
            if (n <= 0)
                return -1;
            data += n;
            left -= static_cast<std::size_t>(n);
        }
        setp(outBuf_, outBuf_ + sizeof outBuf_);
        return 0;
    }

    int fd_;
    char inBuf_[8192];
    char outBuf_[8192];
};

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

int
listenUnix(const std::string &path, int backlog, std::string *err)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        if (err != nullptr)
            *err = "unix socket path too long: " + path;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err != nullptr)
            *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str()); // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, backlog) != 0) {
        if (err != nullptr)
            *err = "cannot listen on '" + path +
                   "': " + std::strerror(errno);
        closeFd(fd);
        return -1;
    }
    return fd;
}

int
listenTcp(int port, int backlog, int *bound_port, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (err != nullptr)
            *err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, backlog) != 0) {
        if (err != nullptr)
            *err = "cannot listen on 127.0.0.1:" +
                   std::to_string(port) + ": " +
                   std::strerror(errno);
        closeFd(fd);
        return -1;
    }
    sockaddr_in actual = {};
    socklen_t len = sizeof actual;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&actual),
                      &len) == 0)
        *bound_port = ntohs(actual.sin_port);
    return fd;
}

} // namespace

SocketServer::SocketServer(Server &server, SocketConfig config)
    : server_(server), config_(std::move(config))
{
}

SocketServer::~SocketServer()
{
    stop();
}

bool
SocketServer::start(std::string *err)
{
    if (!config_.unixPath.empty())
        listenFd_ =
            listenUnix(config_.unixPath, config_.backlog, err);
    else
        listenFd_ = listenTcp(config_.tcpPort, config_.backlog,
                              &boundPort_, err);
    if (listenFd_ < 0)
        return false;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
SocketServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire) &&
           !server_.shuttingDown()) {
        reapFinished();
        pollfd pfd = {listenFd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
        if (ready <= 0)
            continue; // timeout (re-check flags) or EINTR
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard lock(connectionsMutex_);
        if (server_.shuttingDown() ||
            connections_.size() >= config_.maxConnections) {
            closeFd(fd); // client sees EOF: connection-level backpressure
            continue;
        }
        connections_.emplace_back();
        const auto conn = std::prev(connections_.end());
        conn->fd = fd;
        conn->thread =
            std::thread([this, conn] { connectionLoop(conn); });
    }
}

void
SocketServer::connectionLoop(std::list<Connection>::iterator conn)
{
    const int fd = conn->fd;
    FdStreambuf buf(fd);
    std::istream in(&buf);
    std::ostream out(&buf);
    try {
        while (true) {
            const auto payload = readFrame(in);
            if (!payload) {
                // A clean EOF between frames is a normal disconnect;
                // any other framing failure earns one diagnostic
                // response (framing cannot resync, so the connection
                // closes).
                if (!in.eof() || in.gcount() != 0)
                    writeFrame(out, server_.malformedResponse(
                                        "bad frame envelope (magic, "
                                        "version, size, or "
                                        "checksum)"));
                break;
            }
            writeFrame(out, server_.handlePayload(*payload));
            if (server_.shuttingDown())
                break; // response (e.g. the shutdown ack) was sent
        }
    } catch (const std::bad_alloc &) {
        // Even capped frames can fail to allocate under memory
        // pressure; one client's frame must drop the connection, not
        // the server.
        writeFrame(out, server_.malformedResponse(
                            "out of memory handling frame"));
    }
    // Park the thread handle for the accept loop (or stop()) to
    // join — a thread cannot join itself. The fd is closed only
    // after the node leaves connections_, so shutdownReads can never
    // touch a closed (possibly recycled) descriptor.
    {
        std::lock_guard lock(connectionsMutex_);
        finished_.splice(finished_.end(), connections_, conn);
        connectionsCv_.notify_all();
    }
    closeFd(fd);
}

void
SocketServer::reapFinished()
{
    // Splice out under the lock, join outside it: the joined threads
    // have already done their exit bookkeeping (the splice above).
    std::list<Connection> done;
    {
        std::lock_guard lock(connectionsMutex_);
        done.splice(done.end(), finished_);
    }
    for (Connection &conn : done)
        conn.thread.join();
}

void
SocketServer::shutdownReads()
{
    std::lock_guard lock(connectionsMutex_);
    for (Connection &conn : connections_)
        ::shutdown(conn.fd, SHUT_RD);
}

void
SocketServer::stop()
{
    if (listenFd_ < 0)
        return;
    stopping_.store(true, std::memory_order_release);
    if (acceptThread_.joinable())
        acceptThread_.join();
    // SHUT_RD — not RDWR — wakes connections parked in read (they
    // see EOF) while an in-flight response can still drain to its
    // client; each worker then finishes its current request, writes
    // the response, and parks itself on the finished list.
    shutdownReads();
    {
        std::unique_lock lock(connectionsMutex_);
        connectionsCv_.wait(
            lock, [this] { return connections_.empty(); });
    }
    reapFinished();
    closeFd(listenFd_);
    listenFd_ = -1;
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
}

void
SocketServer::waitForShutdown()
{
    // The accept thread exits once the Server starts draining (it
    // re-checks every poll timeout); connections finish their last
    // response on their own. stop() then closes any idle ones.
    if (acceptThread_.joinable())
        acceptThread_.join();
    stop();
}

ServeClient::~ServeClient()
{
    closeFd(fd_);
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        closeFd(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

std::optional<ServeClient>
ServeClient::connectUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path) {
        if (err != nullptr)
            *err = "unix socket path too long: " + path;
        return std::nullopt;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (err != nullptr)
            *err = "cannot connect to '" + path +
                   "': " + std::strerror(errno);
        closeFd(fd);
        return std::nullopt;
    }
    return ServeClient(fd);
}

std::optional<ServeClient>
ServeClient::connectTcp(int port, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (err != nullptr)
            *err = "cannot connect to 127.0.0.1:" +
                   std::to_string(port) + ": " +
                   std::strerror(errno);
        closeFd(fd);
        return std::nullopt;
    }
    return ServeClient(fd);
}

std::optional<Response>
ServeClient::call(const Request &request, std::string *err)
{
    FdStreambuf buf(fd_);
    std::ostream out(&buf);
    std::istream in(&buf);
    writeFrame(out, encodeRequest(request));
    if (!out) {
        if (err != nullptr)
            *err = "write failed (server closed the connection?)";
        return std::nullopt;
    }
    const auto payload = readFrame(in);
    if (!payload) {
        if (err != nullptr)
            *err = "no response (connection closed or corrupt "
                   "frame)";
        return std::nullopt;
    }
    std::string decode_err;
    auto response = decodeResponse(*payload, &decode_err);
    if (!response) {
        if (err != nullptr)
            *err = decode_err;
        return std::nullopt;
    }
    return response;
}

} // namespace wct::serve
