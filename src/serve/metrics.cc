#include "serve/metrics.hh"

#include <algorithm>
#include <span>
#include <sstream>

#include "data/binary_io.hh"
#include "serve/wire.hh"
#include "util/string_utils.hh"

namespace wct::serve
{

std::uint64_t
HistogramSnapshot::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts)
        sum += c;
    return sum;
}

double
HistogramSnapshot::quantile(double q) const
{
    const std::uint64_t n = total();
    if (n == 0 || counts.empty())
        return 0.0;
    const double rank = q * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (static_cast<double>(seen) >= rank) {
            // Overflow bucket has no finite bound; report the last
            // finite one (the histogram's measurement ceiling).
            return b < bounds.size() ? bounds[b] : bounds.back();
        }
    }
    return bounds.back();
}

namespace
{

void
appendHistogram(ByteSink &sink, const HistogramSnapshot &snap)
{
    sink.putU64(snap.counts.size());
    for (std::uint64_t c : snap.counts)
        sink.putU64(c);
}

bool
parseHistogram(ByteParser &parser, std::span<const double> bounds,
               HistogramSnapshot &snap)
{
    std::uint64_t buckets = 0;
    if (!parser.getU64(buckets) || buckets != bounds.size() + 1)
        return false;
    snap.bounds.assign(bounds.begin(), bounds.end());
    snap.counts.resize(buckets);
    for (auto &c : snap.counts)
        if (!parser.getU64(c))
            return false;
    return true;
}

std::string
renderHistogramLine(const HistogramSnapshot &snap, const char *unit)
{
    std::ostringstream os;
    os << "p50 " << formatDouble(snap.quantile(0.50), 0) << unit
       << "  p95 " << formatDouble(snap.quantile(0.95), 0) << unit
       << "  p99 " << formatDouble(snap.quantile(0.99), 0) << unit
       << "  (n=" << snap.total() << ")";
    return os.str();
}

} // namespace

void
appendSnapshot(ByteSink &sink, const MetricsSnapshot &snapshot)
{
    for (std::uint64_t v : snapshot.requestsByOp)
        sink.putU64(v);
    for (std::uint64_t v : snapshot.responsesByStatus)
        sink.putU64(v);
    sink.putU64(snapshot.batches);
    sink.putU64(snapshot.samplesPredicted);
    sink.putU64(snapshot.rejectedOverload);
    sink.putU64(snapshot.malformedFrames);
    sink.putU64(snapshot.modelLoads);
    sink.putU64(snapshot.modelLoadFailures);
    sink.putU64(snapshot.queueDepth);
    sink.putU64(snapshot.queueDepthPeak);
    appendHistogram(sink, snapshot.requestLatencyUs);
    appendHistogram(sink, snapshot.batchSize);
}

bool
parseSnapshot(ByteParser &parser, MetricsSnapshot &snapshot)
{
    for (auto &v : snapshot.requestsByOp)
        if (!parser.getU64(v))
            return false;
    for (auto &v : snapshot.responsesByStatus)
        if (!parser.getU64(v))
            return false;
    if (!parser.getU64(snapshot.batches) ||
        !parser.getU64(snapshot.samplesPredicted) ||
        !parser.getU64(snapshot.rejectedOverload) ||
        !parser.getU64(snapshot.malformedFrames) ||
        !parser.getU64(snapshot.modelLoads) ||
        !parser.getU64(snapshot.modelLoadFailures) ||
        !parser.getU64(snapshot.queueDepth) ||
        !parser.getU64(snapshot.queueDepthPeak)) {
        return false;
    }
    return parseHistogram(parser,
                          {kLatencyBoundsUs.data(),
                           kLatencyBoundsUs.size()},
                          snapshot.requestLatencyUs) &&
           parseHistogram(parser,
                          {kBatchSizeBounds.data(),
                           kBatchSizeBounds.size()},
                          snapshot.batchSize);
}

std::string
MetricsSnapshot::renderText() const
{
    std::ostringstream os;
    os << "serving metrics\n";
    os << "  requests:";
    for (std::size_t op = 0; op < kNumOpcodes; ++op) {
        os << " " << opcodeName(static_cast<Opcode>(op + 1)) << "="
           << requestsByOp[op];
    }
    os << "\n  responses:";
    for (std::size_t s = 0; s < kNumStatuses; ++s) {
        os << " " << statusName(static_cast<Status>(s)) << "="
           << responsesByStatus[s];
    }
    os << "\n  batches: " << batches << " ("
       << samplesPredicted << " samples";
    if (batches > 0) {
        os << ", avg "
           << formatDouble(static_cast<double>(samplesPredicted) /
                               static_cast<double>(batches),
                           1)
           << "/batch";
    }
    os << ")\n";
    os << "  rejected (overload): " << rejectedOverload << "\n";
    os << "  malformed frames: " << malformedFrames << "\n";
    os << "  model loads: " << modelLoads << " ok, "
       << modelLoadFailures << " failed\n";
    os << "  queue depth: " << queueDepth << " now, "
       << queueDepthPeak << " peak\n";
    os << "  request latency: "
       << renderHistogramLine(requestLatencyUs, "us") << "\n";
    os << "  batch size: " << renderHistogramLine(batchSize, "")
       << "\n";
    return os.str();
}

void
ServingMetrics::countRequest(std::uint8_t opcode)
{
    if (opcode >= 1 && opcode <= kNumOpcodes)
        requestsByOp_[opcode - 1].fetch_add(
            1, std::memory_order_relaxed);
}

void
ServingMetrics::countResponse(std::uint8_t status)
{
    if (status < kNumStatuses)
        responsesByStatus_[status].fetch_add(
            1, std::memory_order_relaxed);
}

void
ServingMetrics::countBatch(std::size_t jobs, std::size_t samples)
{
    batches_.fetch_add(1, std::memory_order_relaxed);
    samplesPredicted_.fetch_add(samples, std::memory_order_relaxed);
    batchSize_.record(static_cast<double>(jobs));
}

void
ServingMetrics::countRejectedOverload()
{
    rejectedOverload_.fetch_add(1, std::memory_order_relaxed);
}

void
ServingMetrics::countMalformedFrame()
{
    malformedFrames_.fetch_add(1, std::memory_order_relaxed);
}

void
ServingMetrics::countModelLoad(bool ok)
{
    (ok ? modelLoads_ : modelLoadFailures_)
        .fetch_add(1, std::memory_order_relaxed);
}

void
ServingMetrics::recordQueueDepth(std::size_t depth)
{
    std::uint64_t peak =
        queueDepthPeak_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !queueDepthPeak_.compare_exchange_weak(
               peak, depth, std::memory_order_relaxed)) {
    }
}

void
ServingMetrics::recordRequestLatencyUs(double us)
{
    requestLatencyUs_.record(us);
}

MetricsSnapshot
ServingMetrics::snapshot(std::size_t queue_depth_now) const
{
    MetricsSnapshot snap;
    for (std::size_t i = 0; i < kNumOpcodes; ++i)
        snap.requestsByOp[i] =
            requestsByOp_[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kNumStatuses; ++i)
        snap.responsesByStatus[i] =
            responsesByStatus_[i].load(std::memory_order_relaxed);
    snap.batches = batches_.load(std::memory_order_relaxed);
    snap.samplesPredicted =
        samplesPredicted_.load(std::memory_order_relaxed);
    snap.rejectedOverload =
        rejectedOverload_.load(std::memory_order_relaxed);
    snap.malformedFrames =
        malformedFrames_.load(std::memory_order_relaxed);
    snap.modelLoads = modelLoads_.load(std::memory_order_relaxed);
    snap.modelLoadFailures =
        modelLoadFailures_.load(std::memory_order_relaxed);
    snap.queueDepth = queue_depth_now;
    snap.queueDepthPeak =
        queueDepthPeak_.load(std::memory_order_relaxed);
    snap.requestLatencyUs = requestLatencyUs_.snapshot();
    snap.batchSize = batchSize_.snapshot();
    return snap;
}

} // namespace wct::serve
