#include "serve/metrics.hh"

#include <algorithm>
#include <chrono>
#include <span>
#include <sstream>

#include "data/binary_io.hh"
#include "serve/wire.hh"
#include "util/string_utils.hh"

namespace wct::serve
{

std::uint64_t
HistogramSnapshot::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts)
        sum += c;
    return sum;
}

double
HistogramSnapshot::quantile(double q) const
{
    const std::uint64_t n = total();
    if (n == 0 || counts.empty())
        return 0.0;
    const double rank = q * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        seen += counts[b];
        if (static_cast<double>(seen) >= rank) {
            // Overflow bucket has no finite bound; report the last
            // finite one (the histogram's measurement ceiling).
            return b < bounds.size() ? bounds[b] : bounds.back();
        }
    }
    return bounds.back();
}

namespace
{

void
appendHistogram(ByteSink &sink, const HistogramSnapshot &snap)
{
    sink.putU64(snap.counts.size());
    for (std::uint64_t c : snap.counts)
        sink.putU64(c);
}

bool
parseHistogram(ByteParser &parser, std::span<const double> bounds,
               HistogramSnapshot &snap)
{
    std::uint64_t buckets = 0;
    if (!parser.getU64(buckets) || buckets != bounds.size() + 1)
        return false;
    snap.bounds.assign(bounds.begin(), bounds.end());
    snap.counts.resize(buckets);
    for (auto &c : snap.counts)
        if (!parser.getU64(c))
            return false;
    return true;
}

std::string
renderHistogramLine(const HistogramSnapshot &snap, const char *unit)
{
    std::ostringstream os;
    os << "p50 " << formatDouble(snap.quantile(0.50), 0) << unit
       << "  p95 " << formatDouble(snap.quantile(0.95), 0) << unit
       << "  p99 " << formatDouble(snap.quantile(0.99), 0) << unit
       << "  (n=" << snap.total() << ")";
    return os.str();
}

} // namespace

void
appendSnapshot(ByteSink &sink, const MetricsSnapshot &snapshot)
{
    for (std::uint64_t v : snapshot.requestsByOp)
        sink.putU64(v);
    for (std::uint64_t v : snapshot.responsesByStatus)
        sink.putU64(v);
    sink.putU64(snapshot.batches);
    sink.putU64(snapshot.samplesPredicted);
    sink.putU64(snapshot.rejectedOverload);
    sink.putU64(snapshot.malformedFrames);
    sink.putU64(snapshot.modelLoads);
    sink.putU64(snapshot.modelLoadFailures);
    sink.putU64(snapshot.queueDepth);
    sink.putU64(snapshot.queueDepthPeak);
    for (std::uint64_t v : snapshot.shedByOp)
        sink.putU64(v);
    for (std::uint64_t v : snapshot.deadlineExpiredByOp)
        sink.putU64(v);
    appendHistogram(sink, snapshot.requestLatencyUs);
    appendHistogram(sink, snapshot.batchSize);
    for (const HistogramSnapshot &h : snapshot.classLatencyUs)
        appendHistogram(sink, h);
}

bool
parseSnapshot(ByteParser &parser, MetricsSnapshot &snapshot)
{
    for (auto &v : snapshot.requestsByOp)
        if (!parser.getU64(v))
            return false;
    for (auto &v : snapshot.responsesByStatus)
        if (!parser.getU64(v))
            return false;
    if (!parser.getU64(snapshot.batches) ||
        !parser.getU64(snapshot.samplesPredicted) ||
        !parser.getU64(snapshot.rejectedOverload) ||
        !parser.getU64(snapshot.malformedFrames) ||
        !parser.getU64(snapshot.modelLoads) ||
        !parser.getU64(snapshot.modelLoadFailures) ||
        !parser.getU64(snapshot.queueDepth) ||
        !parser.getU64(snapshot.queueDepthPeak)) {
        return false;
    }
    for (auto &v : snapshot.shedByOp)
        if (!parser.getU64(v))
            return false;
    for (auto &v : snapshot.deadlineExpiredByOp)
        if (!parser.getU64(v))
            return false;
    if (!parseHistogram(parser,
                        {kLatencyBoundsUs.data(),
                         kLatencyBoundsUs.size()},
                        snapshot.requestLatencyUs) ||
        !parseHistogram(parser,
                        {kBatchSizeBounds.data(),
                         kBatchSizeBounds.size()},
                        snapshot.batchSize)) {
        return false;
    }
    for (HistogramSnapshot &h : snapshot.classLatencyUs)
        if (!parseHistogram(parser,
                            {kLatencyBoundsUs.data(),
                             kLatencyBoundsUs.size()},
                            h))
            return false;
    return true;
}

std::string
MetricsSnapshot::renderText() const
{
    std::ostringstream os;
    os << "serving metrics\n";
    os << "  requests:";
    for (std::size_t op = 0; op < kNumOpcodes; ++op) {
        os << " " << opcodeName(static_cast<Opcode>(op + 1)) << "="
           << requestsByOp[op];
    }
    os << "\n  responses:";
    for (std::size_t s = 0; s < kNumStatuses; ++s) {
        os << " " << statusName(static_cast<Status>(s)) << "="
           << responsesByStatus[s];
    }
    os << "\n  batches: " << batches << " ("
       << samplesPredicted << " samples";
    if (batches > 0) {
        os << ", avg "
           << formatDouble(static_cast<double>(samplesPredicted) /
                               static_cast<double>(batches),
                           1)
           << "/batch";
    }
    os << ")\n";
    os << "  rejected (overload): " << rejectedOverload << "\n";
    os << "  shed (slo):";
    for (std::size_t op = 0; op < kNumOpcodes; ++op) {
        os << " " << opcodeName(static_cast<Opcode>(op + 1)) << "="
           << shedByOp[op];
    }
    os << "\n  deadline expired:";
    for (std::size_t op = 0; op < kNumOpcodes; ++op) {
        os << " " << opcodeName(static_cast<Opcode>(op + 1)) << "="
           << deadlineExpiredByOp[op];
    }
    os << "\n";
    os << "  malformed frames: " << malformedFrames << "\n";
    os << "  model loads: " << modelLoads << " ok, "
       << modelLoadFailures << " failed\n";
    os << "  queue depth: " << queueDepth << " now, "
       << queueDepthPeak << " peak\n";
    os << "  request latency: "
       << renderHistogramLine(requestLatencyUs, "us") << "\n";
    for (std::size_t i = 0; i < kNumInferenceOps; ++i) {
        os << "  " << opcodeName(static_cast<Opcode>(i + 1))
           << " latency: "
           << renderHistogramLine(classLatencyUs[i], "us") << "\n";
    }
    os << "  batch size: " << renderHistogramLine(batchSize, "")
       << "\n";
    return os.str();
}

void
ServingMetrics::countRequest(std::uint8_t opcode)
{
    if (opcode >= 1 && opcode <= kNumOpcodes)
        requestsByOp_[opcode - 1].fetch_add(
            1, std::memory_order_relaxed);
}

void
ServingMetrics::countResponse(std::uint8_t status)
{
    if (status < kNumStatuses)
        responsesByStatus_[status].fetch_add(
            1, std::memory_order_relaxed);
}

void
ServingMetrics::countBatch(std::size_t jobs, std::size_t samples)
{
    batches_.fetch_add(1, std::memory_order_relaxed);
    samplesPredicted_.fetch_add(samples, std::memory_order_relaxed);
    batchSize_.record(static_cast<double>(jobs));
}

void
ServingMetrics::countRejectedOverload()
{
    rejectedOverload_.fetch_add(1, std::memory_order_relaxed);
}

void
ServingMetrics::countMalformedFrame()
{
    malformedFrames_.fetch_add(1, std::memory_order_relaxed);
}

void
ServingMetrics::countModelLoad(bool ok)
{
    (ok ? modelLoads_ : modelLoadFailures_)
        .fetch_add(1, std::memory_order_relaxed);
}

void
ServingMetrics::recordQueueDepth(std::size_t depth)
{
    std::uint64_t peak =
        queueDepthPeak_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !queueDepthPeak_.compare_exchange_weak(
               peak, depth, std::memory_order_relaxed)) {
    }
}

void
ServingMetrics::recordRequestLatencyUs(double us)
{
    requestLatencyUs_.record(us);
}

void
ServingMetrics::countShed(std::uint8_t opcode)
{
    if (opcode >= 1 && opcode <= kNumOpcodes)
        shedByOp_[opcode - 1].fetch_add(1,
                                        std::memory_order_relaxed);
}

void
ServingMetrics::countDeadlineExpired(std::uint8_t opcode)
{
    if (opcode >= 1 && opcode <= kNumOpcodes)
        deadlineExpiredByOp_[opcode - 1].fetch_add(
            1, std::memory_order_relaxed);
}

namespace
{

/** steady-clock seconds / kSloWindowSeconds: which window half we
 * are in. Steady (not wall) time so suspends cannot run it
 * backwards. */
std::int64_t
sloEpochNow()
{
    using namespace std::chrono;
    return duration_cast<seconds>(
               steady_clock::now().time_since_epoch())
               .count() /
           static_cast<std::int64_t>(kSloWindowSeconds);
}

} // namespace

void
ServingMetrics::maybeRotate(SloWindow &window)
{
    const std::int64_t now = sloEpochNow();
    if (window.epoch.load(std::memory_order_acquire) == now)
        return;
    std::lock_guard lock(window.rotate);
    const std::int64_t seen =
        window.epoch.load(std::memory_order_relaxed);
    if (seen == now)
        return; // another thread rotated while we waited
    if (now == seen + 1)
        window.prev.copyFrom(window.cur);
    else
        window.prev.clear(); // idle gap: the old half is stale
    window.cur.clear();
    window.epoch.store(now, std::memory_order_release);
}

void
ServingMetrics::recordClassLatencyUs(std::uint8_t opcode, double us)
{
    if (opcode < 1 || opcode > kNumInferenceOps)
        return;
    classLatencyUs_[opcode - 1].record(us);
    SloWindow &window = sloWindow_[opcode - 1];
    maybeRotate(window);
    window.cur.record(us);
}

double
ServingMetrics::classWindowP99Us(std::uint8_t opcode,
                                 std::uint64_t *samples)
{
    if (samples != nullptr)
        *samples = 0;
    if (opcode < 1 || opcode > kNumInferenceOps)
        return 0.0;
    SloWindow &window = sloWindow_[opcode - 1];
    maybeRotate(window);
    HistogramSnapshot merged = window.cur.snapshot();
    window.prev.accumulateInto(merged);
    if (samples != nullptr)
        *samples = merged.total();
    return merged.quantile(0.99);
}

MetricsSnapshot
ServingMetrics::snapshot(std::size_t queue_depth_now) const
{
    MetricsSnapshot snap;
    for (std::size_t i = 0; i < kNumOpcodes; ++i)
        snap.requestsByOp[i] =
            requestsByOp_[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kNumStatuses; ++i)
        snap.responsesByStatus[i] =
            responsesByStatus_[i].load(std::memory_order_relaxed);
    snap.batches = batches_.load(std::memory_order_relaxed);
    snap.samplesPredicted =
        samplesPredicted_.load(std::memory_order_relaxed);
    snap.rejectedOverload =
        rejectedOverload_.load(std::memory_order_relaxed);
    snap.malformedFrames =
        malformedFrames_.load(std::memory_order_relaxed);
    snap.modelLoads = modelLoads_.load(std::memory_order_relaxed);
    snap.modelLoadFailures =
        modelLoadFailures_.load(std::memory_order_relaxed);
    snap.queueDepth = queue_depth_now;
    snap.queueDepthPeak =
        queueDepthPeak_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
        snap.shedByOp[i] =
            shedByOp_[i].load(std::memory_order_relaxed);
        snap.deadlineExpiredByOp[i] =
            deadlineExpiredByOp_[i].load(std::memory_order_relaxed);
    }
    snap.requestLatencyUs = requestLatencyUs_.snapshot();
    snap.batchSize = batchSize_.snapshot();
    for (std::size_t i = 0; i < kNumInferenceOps; ++i)
        snap.classLatencyUs[i] = classLatencyUs_[i].snapshot();
    return snap;
}

} // namespace wct::serve
