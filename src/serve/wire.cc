#include "serve/wire.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "data/binary_io.hh"

namespace wct::serve
{

namespace
{

/** Sanity caps so a corrupt count never turns into a huge alloc.
 * The row cap is sized so a full predict response (16 bytes/row)
 * stays under kMaxFramePayload. */
constexpr std::uint64_t kMaxColumns = 1u << 16;
constexpr std::uint64_t kMaxRowsPerRequest = 1u << 23;
static_assert(kMaxRowsPerRequest * 16 < kMaxFramePayload,
              "a maximal predict response must fit in one frame");

std::string_view
magic()
{
    return std::string_view(kWireMagic, 8);
}

bool
fail(std::string *err, const char *message)
{
    if (err != nullptr)
        *err = message;
    return false;
}

bool
validOpcode(std::uint8_t op)
{
    return op >= 1 && op <= kNumOpcodes;
}

std::string
sealed(const ByteSink &sink)
{
    std::ostringstream out;
    writeEnvelope(out, magic(), kWireFormatVersion, sink.bytes());
    return out.str();
}

} // namespace

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Predict:
        return "predict";
      case Opcode::Classify:
        return "classify";
      case Opcode::LoadModel:
        return "loadModel";
      case Opcode::Stats:
        return "stats";
      case Opcode::Shutdown:
        return "shutdown";
    }
    return "unknown";
}

const char *
statusName(Status status)
{
    switch (status) {
      case Status::Ok:
        return "ok";
      case Status::Error:
        return "error";
      case Status::Overloaded:
        return "overloaded";
      case Status::ShuttingDown:
        return "shuttingDown";
      case Status::MalformedFrame:
        return "malformedFrame";
      case Status::Shed:
        return "shed";
      case Status::DeadlineExceeded:
        return "deadlineExceeded";
    }
    return "unknown";
}

std::string
encodeRequest(const Request &request)
{
    ByteSink sink;
    sink.putU8(static_cast<std::uint8_t>(request.op));
    sink.putU64(request.id);
    sink.putU32(request.budgetMs);
    switch (request.op) {
      case Opcode::Predict:
      case Opcode::Classify: {
        sink.putString(request.modelKey);
        sink.putU64(request.schema.size());
        for (const std::string &name : request.schema)
            sink.putString(name);
        const std::size_t cols = request.schema.size();
        const std::size_t rows =
            cols == 0 ? 0 : request.rows.size() / cols;
        sink.putU64(rows);
        for (std::size_t i = 0; i < rows * cols; ++i)
            sink.putDouble(request.rows[i]);
        break;
      }
      case Opcode::LoadModel:
        sink.putString(request.path);
        sink.putString(request.alias);
        break;
      case Opcode::Stats:
      case Opcode::Shutdown:
        break;
    }
    return sealed(sink);
}

std::string
encodeResponse(const Response &response)
{
    ByteSink sink;
    sink.putU8(static_cast<std::uint8_t>(response.op));
    sink.putU64(response.id);
    sink.putU8(static_cast<std::uint8_t>(response.status));
    if (response.status != Status::Ok) {
        sink.putString(response.error);
        return sealed(sink);
    }
    switch (response.op) {
      case Opcode::Predict:
        sink.putU64(response.cpi.size());
        for (std::size_t i = 0; i < response.cpi.size(); ++i) {
            sink.putDouble(response.cpi[i]);
            sink.putU64(response.leaf[i]);
        }
        break;
      case Opcode::Classify:
        sink.putU64(response.leaf.size());
        for (std::uint64_t leaf : response.leaf)
            sink.putU64(leaf);
        break;
      case Opcode::LoadModel:
        sink.putString(response.modelKey);
        sink.putString(response.target);
        sink.putU64(response.numLeaves);
        break;
      case Opcode::Stats:
        appendSnapshot(sink, response.stats);
        break;
      case Opcode::Shutdown:
        break;
    }
    return sealed(sink);
}

std::optional<Request>
decodeRequest(std::string_view payload, std::string *err)
{
    ByteParser parser(payload);
    Request request;
    std::uint8_t op = 0;
    if (!parser.getU8(op) || !validOpcode(op) ||
        !parser.getU64(request.id) ||
        !parser.getU32(request.budgetMs)) {
        fail(err, "request: bad opcode header");
        return std::nullopt;
    }
    request.op = static_cast<Opcode>(op);
    switch (request.op) {
      case Opcode::Predict:
      case Opcode::Classify: {
        std::uint64_t cols = 0;
        if (!parser.getString(request.modelKey) ||
            !parser.getU64(cols) || cols == 0 || cols > kMaxColumns) {
            fail(err, "request: bad predict header");
            return std::nullopt;
        }
        request.schema.resize(cols);
        for (std::string &name : request.schema)
            if (!parser.getString(name) || name.empty()) {
                fail(err, "request: bad schema name");
                return std::nullopt;
            }
        std::uint64_t rows = 0;
        // The cells must actually be present in the payload; checking
        // before the resize keeps a short hostile frame from turning
        // its claimed row count into a giant allocation.
        if (!parser.getU64(rows) || rows > kMaxRowsPerRequest ||
            rows * cols > payload.size() / sizeof(double)) {
            fail(err, "request: bad row count");
            return std::nullopt;
        }
        request.rows.resize(rows * cols);
        for (double &v : request.rows)
            if (!parser.getDouble(v)) {
                fail(err, "request: truncated rows");
                return std::nullopt;
            }
        break;
      }
      case Opcode::LoadModel:
        if (!parser.getString(request.path) ||
            !parser.getString(request.alias) ||
            request.path.empty()) {
            fail(err, "request: bad loadModel body");
            return std::nullopt;
        }
        break;
      case Opcode::Stats:
      case Opcode::Shutdown:
        break;
    }
    if (!parser.atEnd()) {
        fail(err, "request: trailing bytes");
        return std::nullopt;
    }
    return request;
}

std::optional<Response>
decodeResponse(std::string_view payload, std::string *err)
{
    ByteParser parser(payload);
    Response response;
    std::uint8_t op = 0;
    std::uint8_t status = 0;
    if (!parser.getU8(op) || !validOpcode(op) ||
        !parser.getU64(response.id) || !parser.getU8(status) ||
        status >= kNumStatuses) {
        fail(err, "response: bad header");
        return std::nullopt;
    }
    response.op = static_cast<Opcode>(op);
    response.status = static_cast<Status>(status);
    if (response.status != Status::Ok) {
        if (!parser.getString(response.error) || !parser.atEnd()) {
            fail(err, "response: bad error body");
            return std::nullopt;
        }
        return response;
    }
    switch (response.op) {
      case Opcode::Predict: {
        std::uint64_t n = 0;
        if (!parser.getU64(n) || n > kMaxRowsPerRequest ||
            n > payload.size() / (2 * sizeof(double))) {
            fail(err, "response: bad predict count");
            return std::nullopt;
        }
        response.cpi.resize(n);
        response.leaf.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            if (!parser.getDouble(response.cpi[i]) ||
                !parser.getU64(response.leaf[i])) {
                fail(err, "response: truncated predictions");
                return std::nullopt;
            }
        break;
      }
      case Opcode::Classify: {
        std::uint64_t n = 0;
        if (!parser.getU64(n) || n > kMaxRowsPerRequest ||
            n > payload.size() / sizeof(std::uint64_t)) {
            fail(err, "response: bad classify count");
            return std::nullopt;
        }
        response.leaf.resize(n);
        for (auto &leaf : response.leaf)
            if (!parser.getU64(leaf)) {
                fail(err, "response: truncated classes");
                return std::nullopt;
            }
        break;
      }
      case Opcode::LoadModel:
        if (!parser.getString(response.modelKey) ||
            !parser.getString(response.target) ||
            !parser.getU64(response.numLeaves)) {
            fail(err, "response: bad loadModel body");
            return std::nullopt;
        }
        break;
      case Opcode::Stats:
        if (!parseSnapshot(parser, response.stats)) {
            fail(err, "response: bad stats body");
            return std::nullopt;
        }
        break;
      case Opcode::Shutdown:
        break;
    }
    if (!parser.atEnd()) {
        fail(err, "response: trailing bytes");
        return std::nullopt;
    }
    return response;
}

std::optional<std::string>
readFrame(std::istream &in)
{
    return readEnvelope(in, magic(), kWireFormatVersion,
                        kMaxFramePayload);
}

void
writeFrame(std::ostream &out, std::string_view frame)
{
    out.write(frame.data(),
              static_cast<std::streamsize>(frame.size()));
    out.flush();
}

} // namespace wct::serve
