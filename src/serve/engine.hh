/**
 * @file
 * The batched inference engine: consumer threads that drain the
 * admission queue, coalesce whatever is waiting into one batch,
 * and fan the rows over the work-stealing pool.
 *
 * Two levels of parallelism compose here. Batcher threads (few) own
 * request-level work: popping coalesced batches, grouping jobs that
 * resolved to the same model, and completing promises. Row-level
 * work — the actual tree descents — goes through parallelFor on the
 * global pool, the same path predictAll uses for offline datasets,
 * so a single 10k-row request saturates the machine just like ten
 * 1k-row requests do. By default rows are evaluated in blocks
 * through the model's flattened CompiledTree (branch-free descent,
 * one pass for CPI + leaf; mtree/compiled_tree.hh); the interpreted
 * per-row walk survives behind EngineConfig::compiledEval = false
 * as the differential and perf baseline.
 *
 * Results are deterministic by construction: every row's (CPI, leaf)
 * is a pure function of the row and the model snapshot resolved at
 * admission, written to a pre-sized slot of its own response. Batch
 * *composition* depends on timing; batch *outputs* never do.
 */

#ifndef WCT_SERVE_ENGINE_HH
#define WCT_SERVE_ENGINE_HH

#include <cstddef>
#include <thread>
#include <vector>

#include "serve/metrics.hh"
#include "serve/queue.hh"

namespace wct::serve
{

/** Engine tuning knobs. */
struct EngineConfig
{
    /** Batcher (consumer) threads draining the queue. */
    std::size_t batchers = 1;

    /** Most jobs coalesced into one batch. */
    std::size_t maxBatch = 64;

    /**
     * Evaluate rows through the model's flattened CompiledTree
     * (mtree/compiled_tree.hh): one branch-free descent per row
     * serves both the CPI and the leaf number. Off = the interpreted
     * per-row tree walk, kept as the differential baseline and the
     * denominator of perf_serve's compiled-vs-interpreted gate. Both
     * modes produce byte-identical responses.
     */
    bool compiledEval = true;
};

/** Owns the batcher threads; see file comment. */
class BatchEngine
{
  public:
    BatchEngine(RequestQueue &queue, ServingMetrics &metrics,
                EngineConfig config);

    BatchEngine(const BatchEngine &) = delete;
    BatchEngine &operator=(const BatchEngine &) = delete;

    /** Stops (drains) if still running. */
    ~BatchEngine();

    /** Spawn the batcher threads. */
    void start();

    /**
     * Close the queue and join the batchers. Every job admitted
     * before the close is completed first (graceful drain).
     */
    void stop();

  private:
    void batcherLoop();
    void runBatch(std::vector<Job> &batch);

    RequestQueue &queue_;
    ServingMetrics &metrics_;
    EngineConfig config_;
    std::vector<std::thread> batchers_;
};

} // namespace wct::serve

#endif // WCT_SERVE_ENGINE_HH
