/**
 * @file
 * The contract between a socket transport and a frame-oriented
 * service: one stripped envelope payload in, one complete encoded
 * response frame out.
 *
 * SocketServer (serve/socket.hh) is transport only — it owns
 * accepting, per-connection framing, and shutdown choreography, and
 * pumps every decoded payload through this interface. The model
 * server (serve/server.hh, WCTSERV frames) and the artifact store
 * daemon (serve/store_service.hh, WCTSTOR frames) are the two
 * implementations; both must uphold the shared failure policy:
 * nothing a client sends may terminate the process, and every
 * request — malformed ones included — earns exactly one response.
 */

#ifndef WCT_SERVE_FRAME_HANDLER_HH
#define WCT_SERVE_FRAME_HANDLER_HH

#include <string>
#include <string_view>

namespace wct::serve
{

/** A frame-oriented service behind a SocketServer. Implementations
 * must be safe to call from many transport threads concurrently. */
class FrameHandler
{
  public:
    virtual ~FrameHandler() = default;

    /** One request payload (envelope already stripped) in, one
     * complete encoded response frame out. */
    virtual std::string handlePayload(std::string_view payload) = 0;

    /** Encoded response for a frame the transport could not even
     * de-envelope (bad magic, truncation, checksum, oversize). */
    virtual std::string
    malformedResponse(const std::string &reason) = 0;

    /** True once the service is draining: the transport stops
     * accepting and lets in-flight responses finish. */
    virtual bool shuttingDown() const = 0;
};

} // namespace wct::serve

#endif // WCT_SERVE_FRAME_HANDLER_HH
