/**
 * @file
 * Socket transport for frame-oriented services: a Unix-domain or
 * loopback-TCP acceptor in front of a FrameHandler — the model
 * server (WCTSERV frames) and the artifact store daemon (WCTSTOR
 * frames) share this transport; only the envelope magic/version/cap
 * in SocketConfig differs.
 *
 * The accept/worker model is deliberately simple and explicit: one
 * accept thread (poll with a short timeout, so shutdown is noticed
 * promptly) and one worker thread per connection, capped by
 * maxConnections — beyond the cap a connection is accepted and
 * immediately closed, which a client observes as EOF and treats like
 * overload. Per-connection framing reuses the binary_io envelope
 * through a std::streambuf over the file descriptor; a corrupt
 * envelope gets one MalformedFrame response and the connection is
 * dropped (framing cannot resync inside a byte stream).
 *
 * Shutdown: once the handler enters draining (a shutdown frame or
 * stop()), the acceptor stops accepting and every parked connection
 * read is forced out with ::shutdown(SHUT_RD) on its descriptor —
 * read-only, so a response still in flight drains to its client
 * before the worker exits and is joined. Worker threads that finish
 * earlier park their handles on a finished list that the accept loop
 * joins every poll tick, so a long-running server does not
 * accumulate exited-thread stacks.
 */

#ifndef WCT_SERVE_SOCKET_HH
#define WCT_SERVE_SOCKET_HH

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "serve/frame_handler.hh"
#include "serve/wire.hh"

namespace wct::serve
{

/** Listener configuration: exactly one of unixPath / tcpPort. */
struct SocketConfig
{
    /** Unix-domain socket path; non-empty selects AF_UNIX. */
    std::string unixPath;

    /** TCP port on 127.0.0.1; 0 picks an ephemeral port. Used only
     * when unixPath is empty. */
    int tcpPort = 0;

    /** Listen backlog. */
    int backlog = 16;

    /** Concurrent connection cap; excess connections see EOF. */
    std::size_t maxConnections = 32;

    /** Envelope framing of this listener. Defaults are the serving
     * wire; the store daemon swaps in the WCTSTOR values
     * (data/store_wire.hh). */
    std::string frameMagic = std::string(kWireMagic, 8);
    std::uint32_t frameVersion = kWireFormatVersion;
    std::uint64_t maxFramePayload = kMaxFramePayload;
};

/** Accepts connections and pumps frames into a FrameHandler. */
class SocketServer
{
  public:
    SocketServer(FrameHandler &handler, SocketConfig config);

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Stops if still running. */
    ~SocketServer();

    /** Bind + listen + start the accept thread; false + err on
     * failure (address in use, bad path, ...). */
    bool start(std::string *err);

    /** Stop accepting, force-close connections, join everything. */
    void stop();

    /**
     * Block until the handler enters shutdown (e.g. a client sent a
     * shutdown frame) and every connection finished, then stop().
     */
    void waitForShutdown();

    /** Actual TCP port after start() (ephemeral binds); 0 for Unix. */
    int boundPort() const { return boundPort_; }

  private:
    /** One worker thread bound to one accepted descriptor. The node
     * lives in connections_ while the thread runs; on exit the
     * thread splices its own node onto finished_, where the accept
     * loop (or stop()) joins it — so handles never accumulate. */
    struct Connection
    {
        int fd = -1;
        std::thread thread;
    };

    void acceptLoop();
    void connectionLoop(std::list<Connection>::iterator conn);
    void reapFinished();
    void shutdownReads();

    FrameHandler &handler_;
    SocketConfig config_;
    int listenFd_ = -1;
    int boundPort_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread acceptThread_;
    std::mutex connectionsMutex_;
    std::condition_variable connectionsCv_;
    std::list<Connection> connections_; ///< live worker threads
    std::list<Connection> finished_;    ///< exited, awaiting join
};

/**
 * Blocking client for `wct query` and the tests: connect, then one
 * call() per request frame. Not thread-safe (one in-flight call).
 */
class ServeClient
{
  public:
    ~ServeClient();
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;

    /** Connect to a Unix-domain server socket. */
    static std::optional<ServeClient>
    connectUnix(const std::string &path, std::string *err);

    /** Connect to a loopback TCP server socket. */
    static std::optional<ServeClient> connectTcp(int port,
                                                 std::string *err);

    /** Send one request and wait for its response. */
    std::optional<Response> call(const Request &request,
                                 std::string *err);

  private:
    explicit ServeClient(int fd) : fd_(fd) {}

    int fd_ = -1;
};

} // namespace wct::serve

#endif // WCT_SERVE_SOCKET_HH
