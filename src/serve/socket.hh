/**
 * @file
 * Socket transport for frame-oriented services: a Unix-domain or
 * loopback-TCP acceptor in front of a FrameHandler — the model
 * server (WCTSERV frames) and the artifact store daemon (WCTSTOR
 * frames) share this transport; only the envelope magic/version/cap
 * in SocketConfig differs.
 *
 * The transport is an event loop, not thread-per-connection: one
 * reactor thread owns the epoll set — accept, nonblocking reads,
 * incremental frame reassembly per connection, and response writes —
 * and a small fixed worker pool runs FrameHandler::handlePayload for
 * complete frames. Concurrency is bounded by dispatchThreads (work),
 * not by connection count (threads); maxConnections remains the
 * connection-level backpressure: beyond the cap a connection is
 * accepted and immediately closed, which a client observes as EOF
 * and treats like overload.
 *
 * Frame reassembly is incremental over the binary_io envelope
 * layout: the magic is checked as soon as 8 bytes arrived, the
 * version at 12, the claimed payload size against the cap at 20 (so
 * a hostile header can never drive a giant buffer), and the FNV-1a
 * checksum once the full frame is in. Any failure earns one
 * MalformedFrame response and the connection is dropped (framing
 * cannot resync inside a byte stream). Each connection has at most
 * one frame in flight — while the handler runs, the reactor stops
 * reading that connection (TCP flow control is the buffer bound) —
 * so responses keep the strict request order of the old
 * one-thread-per-connection loop.
 *
 * Shutdown: once the handler enters draining (a shutdown frame or
 * stop()), the reactor stops accepting, lets busy connections finish
 * their in-flight response (the shutdown ack drains to its client
 * before the close), flushes and closes everything, and exits; the
 * worker pool is joined after its queue closes.
 */

#ifndef WCT_SERVE_SOCKET_HH
#define WCT_SERVE_SOCKET_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/frame_handler.hh"
#include "serve/wire.hh"

namespace wct::serve
{

/** Listener configuration: exactly one of unixPath / tcpPort. */
struct SocketConfig
{
    /** Unix-domain socket path; non-empty selects AF_UNIX. */
    std::string unixPath;

    /** TCP port on 127.0.0.1; 0 picks an ephemeral port. Used only
     * when unixPath is empty. */
    int tcpPort = 0;

    /** Listen backlog. */
    int backlog = 16;

    /** Concurrent connection cap; excess connections see EOF. */
    std::size_t maxConnections = 32;

    /** Dispatch worker threads running the FrameHandler. These may
     * block (inference admission waits on the job's future), so they
     * are dedicated threads, not borrowed from the compute pool. */
    std::size_t dispatchThreads = 4;

    /** Envelope framing of this listener. Defaults are the serving
     * wire; the store daemon swaps in the WCTSTOR values
     * (data/store_wire.hh). */
    std::string frameMagic = std::string(kWireMagic, 8);
    std::uint32_t frameVersion = kWireFormatVersion;
    std::uint64_t maxFramePayload = kMaxFramePayload;
};

/** Accepts connections and pumps frames into a FrameHandler. */
class SocketServer
{
  public:
    SocketServer(FrameHandler &handler, SocketConfig config);

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Stops if still running. */
    ~SocketServer();

    /** Bind + listen + start the reactor and worker pool; false +
     * err on failure (address in use, bad path, ...). */
    bool start(std::string *err);

    /** Stop accepting, drain in-flight responses, join everything. */
    void stop();

    /**
     * Block until the handler enters shutdown (e.g. a client sent a
     * shutdown frame) and every connection drained, then stop().
     */
    void waitForShutdown();

    /** Actual TCP port after start() (ephemeral binds); 0 for Unix. */
    int boundPort() const { return boundPort_; }

  private:
    /** Per-connection reactor state. Owned (touched) exclusively by
     * the reactor thread; workers reference connections only by id
     * through the completion queue, and ids are never reused, so a
     * completion for a closed connection is simply dropped. */
    struct Conn
    {
        int fd = -1;
        std::string in;         ///< received, not yet framed
        std::string out;        ///< encoded responses to write
        std::size_t outOff = 0; ///< flushed prefix of `out`
        bool busy = false;      ///< one frame is in the handler
        bool readClosed = false;
        bool closeAfterFlush = false;
        bool registered = false;     ///< fd is in the epoll set
        std::uint32_t interest = 0;  ///< current epoll event mask
    };

    /** A complete frame headed for the worker pool. */
    struct Work
    {
        std::uint64_t conn = 0;
        std::string payload;
    };

    /** A handler result headed back to the reactor. */
    struct Completion
    {
        std::uint64_t conn = 0;
        std::string frame;
    };

    void reactorLoop();
    void workerLoop();
    void wakeReactor();

    void handleAccept(bool draining);
    void handleReadable(std::uint64_t id, Conn &conn);
    void parseFrames(std::uint64_t id, Conn &conn);
    void markMalformed(Conn &conn, const char *reason);
    bool flushConn(Conn &conn); ///< false = close the connection now
    void pump(std::uint64_t id, Conn &conn);
    void updateInterest(std::uint64_t id, Conn &conn);
    void closeConn(std::uint64_t id);
    void drainCompletions();
    void beginDrainPass();

    FrameHandler &handler_;
    SocketConfig config_;
    int listenFd_ = -1;
    int boundPort_ = 0;
    int epollFd_ = -1;
    int wakeFd_ = -1;
    std::atomic<bool> stopping_{false};

    std::thread reactorThread_;
    std::vector<std::thread> workers_;

    std::unordered_map<std::uint64_t, Conn> conns_;
    std::uint64_t nextConnId_ = 2; ///< 0 = listen fd, 1 = wake fd

    std::mutex workMutex_;
    std::condition_variable workCv_;
    std::deque<Work> work_;
    bool workClosed_ = false;

    std::mutex completionMutex_;
    std::deque<Completion> completions_;

    std::mutex finishedMutex_;
    std::condition_variable finishedCv_;
    bool finished_ = false; ///< reactor loop exited
};

/**
 * Blocking client for `wct query` and the tests: connect, then one
 * call() per request frame. Not thread-safe (one in-flight call).
 */
class ServeClient
{
  public:
    ~ServeClient();
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;

    /** Connect to a Unix-domain server socket. */
    static std::optional<ServeClient>
    connectUnix(const std::string &path, std::string *err);

    /** Connect to a loopback TCP server socket. */
    static std::optional<ServeClient> connectTcp(int port,
                                                 std::string *err);

    /**
     * Arm a socket-level deadline: a call that waits longer than
     * `ms` milliseconds for its response fails instead of parking
     * forever, and lastCallTimedOut() reports it (`wct query
     * --timeout`). 0 disarms.
     */
    void setTimeoutMs(std::uint64_t ms);

    /** Send one request and wait for its response. */
    std::optional<Response> call(const Request &request,
                                 std::string *err);

    /** True when the most recent call() failed on the socket
     * deadline armed by setTimeoutMs (EAGAIN on the read). */
    bool lastCallTimedOut() const { return timedOut_; }

  private:
    explicit ServeClient(int fd) : fd_(fd) {}

    int fd_ = -1;
    bool timedOut_ = false;
};

} // namespace wct::serve

#endif // WCT_SERVE_SOCKET_HH
