#include "serve/engine.hh"

#include <algorithm>
#include <chrono>
#include <span>

#include "mtree/compiled_tree.hh"
#include "util/thread_pool.hh"

namespace wct::serve
{

BatchEngine::BatchEngine(RequestQueue &queue, ServingMetrics &metrics,
                         EngineConfig config)
    : queue_(queue), metrics_(metrics), config_(config)
{
    config_.batchers = std::max<std::size_t>(1, config_.batchers);
    config_.maxBatch = std::max<std::size_t>(1, config_.maxBatch);
}

BatchEngine::~BatchEngine()
{
    stop();
}

void
BatchEngine::start()
{
    for (std::size_t i = 0; i < config_.batchers; ++i)
        batchers_.emplace_back([this] { batcherLoop(); });
}

void
BatchEngine::stop()
{
    queue_.close();
    for (std::thread &thread : batchers_)
        thread.join();
    batchers_.clear();
}

void
BatchEngine::batcherLoop()
{
    std::vector<Job> batch;
    while (true) {
        batch.clear();
        if (!queue_.popBatch(batch, config_.maxBatch))
            return; // closed and drained
        runBatch(batch);
    }
}

void
BatchEngine::runBatch(std::vector<Job> &batch)
{
    // Deadline check at dequeue: a job whose budget expired while it
    // sat in the queue is answered immediately and never evaluated —
    // under overload the engine spends its time on requests whose
    // clients are still waiting. Expired jobs are excluded from the
    // batch accounting and (below) from the latency histograms, so
    // requestLatencyUs.total() keeps counting exactly the Ok
    // inference responses. tree == nullptr marks a job as expired
    // for the rest of this function (live jobs always carry the
    // model snapshot resolved at admission).
    const auto dequeued = std::chrono::steady_clock::now();
    std::size_t total_rows = 0;
    std::size_t live_jobs = 0;
    for (Job &job : batch) {
        if (job.deadline && *job.deadline <= dequeued) {
            Response &response = job.response;
            response.op = job.request.op;
            response.id = job.request.id;
            response.status = Status::DeadlineExceeded;
            response.error = "deadline expired in queue";
            metrics_.countDeadlineExpired(
                static_cast<std::uint8_t>(job.request.op));
            job.tree.reset();
            job.result.set_value(std::move(response));
            continue;
        }
        total_rows += job.request.numRows();
        ++live_jobs;
    }
    if (live_jobs == 0)
        return;
    metrics_.countBatch(live_jobs, total_rows);

    // Group jobs that resolved to the same model snapshot so one
    // parallelFor covers all their rows (stable order: first
    // appearance; the grouping never reorders rows inside a job).
    std::vector<std::vector<Job *>> groups;
    for (Job &job : batch) {
        if (!job.tree)
            continue; // expired at dequeue, already answered
        bool placed = false;
        for (auto &group : groups) {
            if (group.front()->tree == job.tree) {
                group.push_back(&job);
                placed = true;
                break;
            }
        }
        if (!placed)
            groups.push_back({&job});
    }

    for (auto &group : groups) {
        // Pre-size every response and build flat row offsets.
        std::vector<std::size_t> offsets = {0};
        for (Job *job : group) {
            const std::size_t rows = job->request.numRows();
            Response &response = job->response;
            response.op = job->request.op;
            response.id = job->request.id;
            response.status = Status::Ok;
            if (job->request.op == Opcode::Predict)
                response.cpi.resize(rows);
            response.leaf.resize(rows);
            offsets.push_back(offsets.back() + rows);
        }
        const ModelTree &tree = *group.front()->tree;
        const std::size_t group_rows = offsets.back();

        if (config_.compiledEval) {
            // Columnar-hot path: blocks of the flat row space go
            // through the flattened CompiledTree — one branch-free
            // descent per row fills leaf and CPI together. A block
            // may span several jobs; it is split at job boundaries
            // so each sub-range streams one request's contiguous
            // row-major buffer into that job's pre-sized response
            // slots (byte-deterministic at any WCT_THREADS).
            const CompiledTree &compiled = tree.compiled();
            const std::size_t block = CompiledTree::kBlockRows;
            const std::size_t blocks =
                (group_rows + block - 1) / block;
            parallelFor(
                blocks,
                [&](std::size_t b) {
                    std::size_t lo = b * block;
                    const std::size_t hi =
                        std::min(group_rows, lo + block);
                    std::size_t j = static_cast<std::size_t>(
                        std::upper_bound(offsets.begin(),
                                         offsets.end(), lo) -
                        offsets.begin() - 1);
                    std::uint32_t leaves[CompiledTree::kBlockRows];
                    while (lo < hi) {
                        const std::size_t take =
                            std::min(hi, offsets[j + 1]) - lo;
                        if (take == 0) { // zero-row job in range
                            ++j;
                            continue;
                        }
                        Job &job = *group[j];
                        const std::size_t r = lo - offsets[j];
                        const std::size_t cols =
                            job.request.schema.size();
                        double *cpi =
                            job.request.op == Opcode::Predict
                            ? job.response.cpi.data() + r
                            : nullptr;
                        compiled.evaluateBlock(
                            job.request.rows.data() + r * cols,
                            cols, take, cpi, leaves);
                        for (std::size_t i = 0; i < take; ++i)
                            job.response.leaf[r + i] =
                                leaves[i] + 1; // wire: LM numbers
                        lo += take;
                        ++j;
                    }
                },
                ThreadPool::global(), /*min_chunk=*/1);
        } else {
            // Interpreted fallback: per-row pointer-chasing descent,
            // twice per predict row (classify + predict) — the PR 4
            // behavior, kept as perf_serve's gate denominator.
            parallelFor(
                group_rows,
                [&](std::size_t flat) {
                    const std::size_t j = static_cast<std::size_t>(
                        std::upper_bound(offsets.begin(),
                                         offsets.end(), flat) -
                        offsets.begin() - 1);
                    Job &job = *group[j];
                    const std::size_t r = flat - offsets[j];
                    const std::size_t cols =
                        job.request.schema.size();
                    const std::span<const double> row(
                        job.request.rows.data() + r * cols, cols);
                    const std::size_t leaf = tree.classify(row);
                    job.response.leaf[r] = leaf + 1;
                    if (job.request.op == Opcode::Predict)
                        job.response.cpi[r] = tree.predict(row);
                },
                ThreadPool::global(), /*min_chunk=*/64);
        }
    }

    // Complete promises only after the whole group finished; record
    // admission-to-completion latency per request, feeding both the
    // aggregate histogram and the per-class SLO window.
    const auto now = std::chrono::steady_clock::now();
    for (Job &job : batch) {
        if (!job.tree)
            continue; // expired at dequeue, already answered
        const double us =
            std::chrono::duration<double, std::micro>(now -
                                                      job.admitted)
                .count();
        metrics_.recordRequestLatencyUs(us);
        metrics_.recordClassLatencyUs(
            static_cast<std::uint8_t>(job.request.op), us);
        job.result.set_value(std::move(job.response));
    }
}

} // namespace wct::serve
