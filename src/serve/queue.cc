#include "serve/queue.hh"

namespace wct::serve
{

PushResult
RequestQueue::push(Job &&job)
{
    {
        std::lock_guard lock(mutex_);
        if (closed_)
            return PushResult::Closed;
        if (jobs_.size() >= maxDepth_)
            return PushResult::Overloaded;
        jobs_.push_back(std::move(job));
    }
    nonEmpty_.notify_one();
    return PushResult::Ok;
}

bool
RequestQueue::popBatch(std::vector<Job> &out, std::size_t max_batch)
{
    std::unique_lock lock(mutex_);
    nonEmpty_.wait(lock,
                   [this] { return closed_ || !jobs_.empty(); });
    if (jobs_.empty())
        return false; // closed and drained
    const std::size_t take = std::min(max_batch, jobs_.size());
    for (std::size_t i = 0; i < take; ++i) {
        out.push_back(std::move(jobs_.front()));
        jobs_.pop_front();
    }
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard lock(mutex_);
        closed_ = true;
    }
    nonEmpty_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard lock(mutex_);
    return jobs_.size();
}

} // namespace wct::serve
