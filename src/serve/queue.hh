/**
 * @file
 * Bounded MPMC admission queue between transports and the batch
 * engine.
 *
 * Backpressure is explicit: push() on a full queue returns
 * Overloaded immediately — the server answers with a retryable
 * status instead of letting latency grow without bound (admission
 * control, not buffering). close() starts the drain: new pushes are
 * refused with Closed while popBatch() keeps handing out the jobs
 * already admitted until the queue is empty, so shutdown finishes
 * every accepted request.
 *
 * popBatch is the coalescing point: it hands a consumer every queued
 * job up to a cap in one critical section, which is what turns
 * per-request arrivals into engine batches under load (batch size
 * tracks queue depth: near 1 when idle, up to the cap when busy).
 */

#ifndef WCT_SERVE_QUEUE_HH
#define WCT_SERVE_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "mtree/model_tree.hh"
#include "serve/wire.hh"

namespace wct::serve
{

/** One admitted inference request awaiting the batch engine. */
struct Job
{
    Request request;
    std::shared_ptr<const ModelTree> tree; ///< resolved at admission
    std::chrono::steady_clock::time_point admitted;

    /** Completion deadline (admission time + budget); unset = no
     * deadline. The engine refuses to evaluate a job it dequeues
     * past this point (Status::DeadlineExceeded instead). */
    std::optional<std::chrono::steady_clock::time_point> deadline;

    Response response; ///< engine scratch, moved into `result`
    std::promise<Response> result;
};

/** Outcome of an admission attempt. */
enum class PushResult
{
    Ok,
    Overloaded, ///< queue at capacity
    Closed,     ///< server is draining
};

/** Bounded MPMC job queue; see file comment. */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t max_depth)
        : maxDepth_(max_depth)
    {
    }

    /** Admit one job; never blocks. */
    PushResult push(Job &&job);

    /**
     * Move up to `max_batch` jobs into `out` (appended). Blocks while
     * the queue is empty and open; returns false only when the queue
     * is closed *and* fully drained — the consumer's exit signal.
     */
    bool popBatch(std::vector<Job> &out, std::size_t max_batch);

    /** Refuse new admissions; wakes all blocked consumers. */
    void close();

    /** True after close(). */
    bool closed() const;

    /** Jobs currently queued (snapshot). */
    std::size_t depth() const;

  private:
    const std::size_t maxDepth_;
    mutable std::mutex mutex_;
    std::condition_variable nonEmpty_;
    std::deque<Job> jobs_;
    bool closed_ = false;
};

} // namespace wct::serve

#endif // WCT_SERVE_QUEUE_HH
