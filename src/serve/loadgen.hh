/**
 * @file
 * Open-loop load generator for the model server (`wct loadgen`, the
 * serving perf gate, and the CI smoke job).
 *
 * Open-loop means arrival times are fixed up front: request i is due
 * at start + i/rate regardless of how fast earlier responses came
 * back, so a slow server accumulates lateness instead of silently
 * throttling the offered load (the coordinated-omission trap of
 * closed-loop generators). Each of `connections` client connections
 * sends its residue class of the request sequence (connection c owns
 * requests i with i % connections == c) and blocks for the response,
 * so the generator is open-loop up to the connection count.
 *
 * The op mix is a deterministic weighted sequence derived from the
 * seed — two runs with the same config send byte-identical request
 * streams, which keeps the perf gate comparable across runs.
 */

#ifndef WCT_SERVE_LOADGEN_HH
#define WCT_SERVE_LOADGEN_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/metrics.hh"
#include "serve/wire.hh"

namespace wct::serve
{

/** One loadgen run; exactly one of unixPath / tcpPort. */
struct LoadgenConfig
{
    /** Unix-domain server socket; non-empty wins over tcpPort. */
    std::string unixPath;

    /** Loopback TCP port of the server (when unixPath is empty). */
    int tcpPort = 0;

    /** Offered request rate, requests/second, across the whole run. */
    double ratePerSec = 200.0;

    /** Run length in seconds; offered = ratePerSec * durationSec. */
    double durationSec = 2.0;

    /** Client connections (the open-loop concurrency bound). */
    std::size_t connections = 4;

    /** Rows per predict/classify request. */
    std::size_t rowsPerRequest = 32;

    /** Op mix weights; an op with weight 0 is never sent. loadWeight
     * requires loadPath (forced to 0 otherwise). */
    std::uint32_t predictWeight = 6;
    std::uint32_t classifyWeight = 2;
    std::uint32_t loadWeight = 0;
    std::uint32_t statsWeight = 1;

    /** Request budget header on predict/classify (0 = none). */
    std::uint32_t budgetMs = 0;

    /** Client socket deadline per call (0 = wait forever). */
    std::uint64_t timeoutMs = 0;

    /** Model to target on inference requests ("" = default). */
    std::string modelKey;

    /** Inference request schema (must match the served model). */
    std::vector<std::string> schema;

    /** Row pool for inference bodies: flat row-major doubles,
     * pool.size() a multiple of schema.size(). Requests window into
     * it, rotating so payloads vary across the run. */
    std::vector<double> pool;

    /** Model file sent by LoadModel requests (loadWeight > 0). */
    std::string loadPath;
    std::string loadAlias;

    /** Seed of the deterministic op-mix sequence. */
    std::uint64_t seed = 1;
};

/** What a run observed, as reported by `wct loadgen`. */
struct LoadgenReport
{
    std::uint64_t offered = 0;   ///< requests the schedule contained
    std::uint64_t completed = 0; ///< responses decoded, any status
    std::uint64_t transportErrors = 0; ///< send/recv/decode failures
    std::uint64_t timeouts = 0;        ///< client deadline expiries

    std::array<std::uint64_t, kNumOpcodes> sentByOp{};
    std::array<std::uint64_t, kNumStatuses> byStatus{};

    double elapsedSec = 0;   ///< wall time of the sending window
    double achievedRps = 0;  ///< completed / elapsedSec

    /** Client-observed call latency (send to decoded response). */
    double p50Us = 0;
    double p95Us = 0;
    double p99Us = 0;

    /** Responses carrying Status::MalformedFrame — the smoke gate's
     * "zero malformed" assertion reads this. */
    std::uint64_t
    malformed() const
    {
        return byStatus[static_cast<std::size_t>(
            Status::MalformedFrame)];
    }

    /** Human-readable summary (the `wct loadgen` output). */
    std::string renderText() const;
};

/**
 * Run one open-loop load generation pass against a live server.
 * Returns std::nullopt (with the reason in `err`) only for setup
 * failures — a bad config or no connection at all; per-request
 * transport errors are counted in the report instead.
 */
std::optional<LoadgenReport> runLoadgen(const LoadgenConfig &config,
                                        std::string *err);

} // namespace wct::serve

#endif // WCT_SERVE_LOADGEN_HH
