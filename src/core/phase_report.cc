#include "core/phase_report.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace wct
{

PhaseReport::PhaseReport(const ModelTree &tree, const Dataset &samples)
    : numLeaves_(tree.numLeaves()),
      sequence_(tree.classifyAll(samples))
{
    wct_assert(!sequence_.empty(),
               "phase report over an empty sample set");

    // Maximal runs.
    PhaseRun current{sequence_[0], 0, 1};
    for (std::size_t i = 1; i < sequence_.size(); ++i) {
        if (sequence_[i] == current.leaf) {
            ++current.length;
            continue;
        }
        runs_.push_back(current);
        current = PhaseRun{sequence_[i], i, 1};
    }
    runs_.push_back(current);

    // Visited leaves, ascending.
    visited_ = sequence_;
    std::sort(visited_.begin(), visited_.end());
    visited_.erase(std::unique(visited_.begin(), visited_.end()),
                   visited_.end());

    // Transition counts between consecutive runs.
    std::vector<std::size_t> index(numLeaves_, 0);
    for (std::size_t i = 0; i < visited_.size(); ++i)
        index[visited_[i]] = i;
    transitions_.assign(visited_.size(),
                        std::vector<double>(visited_.size(), 0.0));
    for (std::size_t r = 1; r < runs_.size(); ++r)
        transitions_[index[runs_[r - 1].leaf]]
                    [index[runs_[r].leaf]] += 1.0;
    for (auto &row : transitions_) {
        double total = 0.0;
        for (double v : row)
            total += v;
        if (total > 0.0)
            for (double &v : row)
                v /= total;
    }
}

double
PhaseReport::meanRunLength() const
{
    return static_cast<double>(sequence_.size()) /
        static_cast<double>(runs_.size());
}

std::size_t
PhaseReport::distinctLeaves() const
{
    return visited_.size();
}

double
PhaseReport::leafEntropy() const
{
    std::vector<double> counts(numLeaves_, 0.0);
    for (std::size_t leaf : sequence_)
        counts[leaf] += 1.0;
    const double n = static_cast<double>(sequence_.size());
    double entropy = 0.0;
    for (double c : counts) {
        if (c > 0.0) {
            const double p = c / n;
            entropy -= p * std::log2(p);
        }
    }
    return entropy;
}

std::string
PhaseReport::render(std::size_t strip_width) const
{
    wct_assert(strip_width >= 8, "strip too narrow");
    std::string out;
    out += "intervals: " + std::to_string(sequence_.size()) +
        "  runs: " + std::to_string(runs_.size()) +
        "  mean run: " + formatDouble(meanRunLength(), 1) +
        "  distinct leaves: " + std::to_string(distinctLeaves()) +
        "  entropy: " + formatDouble(leafEntropy(), 2) + " bits\n";

    // Timeline strip: one character per bucket of intervals, showing
    // the majority leaf as a letter (A = LM1).
    const std::size_t buckets =
        std::min(strip_width, sequence_.size());
    out += "timeline: ";
    for (std::size_t b = 0; b < buckets; ++b) {
        const std::size_t begin = b * sequence_.size() / buckets;
        const std::size_t end =
            (b + 1) * sequence_.size() / buckets;
        std::vector<std::size_t> counts(numLeaves_, 0);
        for (std::size_t i = begin; i < end; ++i)
            ++counts[sequence_[i]];
        const std::size_t majority = static_cast<std::size_t>(
            std::max_element(counts.begin(), counts.end()) -
            counts.begin());
        out += majority < 26
            ? static_cast<char>('A' + majority)
            : static_cast<char>('a' + (majority - 26) % 26);
    }
    out += "\n";

    // Dominant runs.
    std::vector<PhaseRun> top = runs_;
    std::sort(top.begin(), top.end(),
              [](const PhaseRun &a, const PhaseRun &b) {
                  return a.length > b.length;
              });
    const std::size_t show = std::min<std::size_t>(3, top.size());
    for (std::size_t i = 0; i < show; ++i) {
        out += "  longest run " + std::to_string(i + 1) + ": LM" +
            std::to_string(top[i].leaf + 1) + " x " +
            std::to_string(top[i].length) + " intervals from " +
            std::to_string(top[i].start) + "\n";
    }
    return out;
}

} // namespace wct
