#include "core/similarity.hh"

#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/text_table.hh"

namespace wct
{

SimilarityMatrix::SimilarityMatrix(const ProfileTable &table,
                                   std::vector<std::string> subset)
{
    if (subset.empty())
        for (const BenchmarkProfileRow &row : table.rows())
            subset.push_back(row.name);
    names_ = std::move(subset);

    const std::size_t n = names_.size();
    wct_assert(n >= 2, "similarity needs at least two benchmarks");
    matrix_.assign(n * n, 0.0);
    toSuite_.assign(n, 0.0);

    for (std::size_t i = 0; i < n; ++i) {
        const BenchmarkProfileRow &a = table.row(names_[i]);
        toSuite_[i] = ProfileTable::distance(a, table.suiteRow());
        for (std::size_t j = i + 1; j < n; ++j) {
            const double d =
                ProfileTable::distance(a, table.row(names_[j]));
            matrix_[i * n + j] = d;
            matrix_[j * n + i] = d;
        }
    }
}

SimilarityMatrix::SimilarityMatrix(std::vector<std::string> names,
                                   std::vector<double> matrix,
                                   std::vector<double> toSuite)
    : names_(std::move(names)), matrix_(std::move(matrix)),
      toSuite_(std::move(toSuite))
{
    wct_assert(matrix_.size() == names_.size() * names_.size() &&
                   toSuite_.size() == names_.size(),
               "similarity matrix arity mismatch");
}

double
SimilarityMatrix::at(std::size_t i, std::size_t j) const
{
    wct_assert(i < names_.size() && j < names_.size(),
               "similarity index out of range");
    return matrix_[i * names_.size() + j];
}

double
SimilarityMatrix::distanceToSuite(std::size_t i) const
{
    wct_assert(i < names_.size(), "similarity index out of range");
    return toSuite_[i];
}

std::pair<std::size_t, std::size_t>
SimilarityMatrix::mostSimilarPair() const
{
    std::pair<std::size_t, std::size_t> best = {0, 1};
    for (std::size_t i = 0; i < names_.size(); ++i)
        for (std::size_t j = i + 1; j < names_.size(); ++j)
            if (at(i, j) < at(best.first, best.second))
                best = {i, j};
    return best;
}

std::pair<std::size_t, std::size_t>
SimilarityMatrix::mostDissimilarPair() const
{
    std::pair<std::size_t, std::size_t> best = {0, 1};
    for (std::size_t i = 0; i < names_.size(); ++i)
        for (std::size_t j = i + 1; j < names_.size(); ++j)
            if (at(i, j) > at(best.first, best.second))
                best = {i, j};
    return best;
}

std::string
SimilarityMatrix::render() const
{
    std::vector<std::string> headers = {"vs"};
    for (const std::string &name : names_)
        headers.push_back(name);
    TextTable table(std::move(headers));
    for (std::size_t i = 0; i < names_.size(); ++i) {
        std::vector<std::string> cells = {names_[i]};
        for (std::size_t j = 0; j < names_.size(); ++j)
            cells.push_back(i == j ? "-" : formatDouble(at(i, j), 1));
        table.addRow(std::move(cells));
    }
    table.addRule();
    std::vector<std::string> suite_cells = {"Suite"};
    for (std::size_t i = 0; i < names_.size(); ++i)
        suite_cells.push_back(formatDouble(toSuite_[i], 1));
    table.addRow(std::move(suite_cells));
    return table.render();
}

} // namespace wct
