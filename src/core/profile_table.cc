#include "core/profile_table.hh"

#include <cmath>

#include "stats/descriptive.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/text_table.hh"
#include "util/thread_pool.hh"

namespace wct
{

BenchmarkProfileRow
ProfileTable::classifyInto(const std::string &name,
                           const Dataset &samples,
                           const ModelTree &tree)
{
    BenchmarkProfileRow row;
    row.name = name;
    row.percent.assign(tree.numLeaves(), 0.0);
    if (samples.numRows() == 0)
        return row;

    for (std::size_t leaf : tree.classifyAll(samples))
        row.percent[leaf] += 1.0;
    for (double &p : row.percent)
        p *= 100.0 / static_cast<double>(samples.numRows());
    const auto cpi = samples.column(tree.targetName());
    row.meanCpi = mean(cpi);
    return row;
}

ProfileTable::ProfileTable(const SuiteData &data, const ModelTree &tree)
    : numModels_(tree.numLeaves())
{
    // Each benchmark's classification is independent and lands in its
    // own pre-sized slot, so the per-benchmark loop parallelizes with
    // no effect on the result.
    rows_.resize(data.benchmarks.size());
    parallelFor(data.benchmarks.size(), [&](std::size_t i) {
        const BenchmarkData &bench = data.benchmarks[i];
        rows_[i] = classifyInto(bench.name, bench.samples, tree);
    });

    suite_ = classifyInto("Suite", data.pooled(), tree);

    average_.name = "Average";
    average_.percent.assign(numModels_, 0.0);
    double cpi_sum = 0.0;
    for (const BenchmarkProfileRow &row : rows_) {
        for (std::size_t i = 0; i < numModels_; ++i)
            average_.percent[i] += row.percent[i];
        cpi_sum += row.meanCpi;
    }
    if (!rows_.empty()) {
        for (double &p : average_.percent)
            p /= static_cast<double>(rows_.size());
        average_.meanCpi = cpi_sum / static_cast<double>(rows_.size());
    }
}

ProfileTable::ProfileTable(std::size_t num_models,
                           std::vector<BenchmarkProfileRow> rows,
                           BenchmarkProfileRow suite,
                           BenchmarkProfileRow average)
    : numModels_(num_models), rows_(std::move(rows)),
      suite_(std::move(suite)), average_(std::move(average))
{
}

const BenchmarkProfileRow &
ProfileTable::row(const std::string &name) const
{
    for (const BenchmarkProfileRow &row : rows_)
        if (row.name == name)
            return row;
    wct_fatal("profile table has no row '", name, "'");
}

double
ProfileTable::distance(const BenchmarkProfileRow &a,
                       const BenchmarkProfileRow &b)
{
    wct_assert(a.percent.size() == b.percent.size(),
               "profile arity mismatch: ", a.percent.size(), " vs ",
               b.percent.size());
    double total = 0.0;
    for (std::size_t i = 0; i < a.percent.size(); ++i)
        total += std::fabs(a.percent[i] - b.percent[i]);
    return 0.5 * total;
}

std::string
ProfileTable::render(double bold_threshold) const
{
    std::vector<std::string> headers = {"Benchmark"};
    for (std::size_t i = 1; i <= numModels_; ++i)
        headers.push_back("LM" + std::to_string(i));
    headers.push_back("CPI");

    TextTable table(std::move(headers));
    auto add = [&](const BenchmarkProfileRow &row) {
        std::vector<std::string> cells = {row.name};
        for (double p : row.percent) {
            std::string cell = formatDouble(p, 1);
            // The paper bolds contributions above 20%; plain text
            // marks them with an asterisk.
            if (p >= bold_threshold)
                cell += "*";
            cells.push_back(std::move(cell));
        }
        cells.push_back(formatDouble(row.meanCpi, 2));
        table.addRow(std::move(cells));
    };

    for (const BenchmarkProfileRow &row : rows_)
        add(row);
    table.addRule();
    add(suite_);
    add(average_);
    return table.render();
}

} // namespace wct
