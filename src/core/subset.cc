#include "core/subset.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/cluster.hh"
#include "stats/descriptive.hh"
#include "stats/pca.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace wct
{

BenchmarkProfileRow
combineProfiles(const ProfileTable &table, const SuiteData &data,
                const std::vector<std::string> &names)
{
    wct_assert(!names.empty(), "combining an empty subset");
    BenchmarkProfileRow combined;
    combined.name = "subset";
    combined.percent.assign(table.numModels(), 0.0);

    double total_weight = 0.0;
    for (const std::string &name : names) {
        const BenchmarkProfileRow &row = table.row(name);
        const double weight =
            data.benchmark(name).instructionWeight;
        for (std::size_t i = 0; i < combined.percent.size(); ++i)
            combined.percent[i] += weight * row.percent[i];
        combined.meanCpi += weight * row.meanCpi;
        total_weight += weight;
    }
    for (double &p : combined.percent)
        p /= total_weight;
    combined.meanCpi /= total_weight;
    return combined;
}

SubsetResult
evaluateSubset(const ProfileTable &table, const SuiteData &data,
               std::vector<std::string> names)
{
    SubsetResult result;
    const BenchmarkProfileRow combined =
        combineProfiles(table, data, names);
    result.profileDistance =
        ProfileTable::distance(combined, table.suiteRow());
    result.cpiError =
        std::fabs(combined.meanCpi - table.suiteRow().meanCpi);
    result.selected = std::move(names);
    return result;
}

SubsetResult
selectGreedyProfile(const ProfileTable &table, const SuiteData &data,
                    std::size_t k)
{
    wct_assert(k >= 1 && k <= table.rows().size(),
               "subset size ", k, " out of range");
    std::vector<std::string> selected;
    std::vector<std::string> remaining;
    for (const auto &row : table.rows())
        remaining.push_back(row.name);

    std::vector<double> distances;
    while (selected.size() < k) {
        // Evaluate every candidate into its own slot, then take the
        // argmin in ascending order — the same lowest-index tie-break
        // the sequential scan had, independent of scheduling.
        distances.assign(remaining.size(), 0.0);
        parallelFor(remaining.size(), [&](std::size_t i) {
            auto trial = selected;
            trial.push_back(remaining[i]);
            distances[i] =
                evaluateSubset(table, data, std::move(trial))
                    .profileDistance;
        });
        double best_distance =
            std::numeric_limits<double>::infinity();
        std::size_t best = remaining.size();
        for (std::size_t i = 0; i < remaining.size(); ++i) {
            if (distances[i] < best_distance) {
                best_distance = distances[i];
                best = i;
            }
        }
        selected.push_back(remaining[best]);
        remaining.erase(remaining.begin() +
                        static_cast<std::ptrdiff_t>(best));
    }
    return evaluateSubset(table, data, std::move(selected));
}

SubsetResult
selectByMedoids(const ProfileTable &table, const SuiteData &data,
                std::size_t k)
{
    const auto &rows = table.rows();
    const std::size_t n = rows.size();
    wct_assert(k >= 1 && k <= n, "subset size ", k, " out of range");

    // Each (i, j) pair is written exactly once, by the task owning
    // the smaller index, so the row-parallel fill is race-free.
    std::vector<double> distances(n * n, 0.0);
    parallelFor(n, [&](std::size_t i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double d =
                ProfileTable::distance(rows[i], rows[j]);
            distances[i * n + j] = d;
            distances[j * n + i] = d;
        }
    });

    const KMedoidsResult medoids = kMedoids(distances, n, k);
    std::vector<std::string> names;
    names.reserve(k);
    for (std::size_t m : medoids.medoids)
        names.push_back(rows[m].name);
    return evaluateSubset(table, data, std::move(names));
}

SubsetResult
selectByPcaClustering(const ProfileTable &table, const SuiteData &data,
                      std::size_t k, Rng &rng)
{
    const std::size_t n = data.benchmarks.size();
    wct_assert(k >= 1 && k <= n, "subset size ", k, " out of range");

    // Per-benchmark mean metric vectors (CPI excluded: subsetting by
    // behaviour signature, not by the outcome).
    const auto names = metricColumnNames();
    Dataset features(names);
    std::vector<double> row(names.size());
    for (const BenchmarkData &bench : data.benchmarks) {
        for (std::size_t c = 0; c < names.size(); ++c)
            row[c] = bench.samples.summarize(c).mean;
        features.addRow(row);
    }

    const PcaResult pca = computePca(features, {"CPI"});
    const std::size_t pcs = std::max<std::size_t>(
        2, pca.componentsForVariance(0.90));
    const Dataset scores = features.numRows() > 0
        ? pca.transform(features, std::min(pcs, pca.dimension()))
        : Dataset();

    std::vector<std::vector<double>> points;
    points.reserve(n);
    for (std::size_t r = 0; r < scores.numRows(); ++r) {
        const auto score_row = scores.row(r);
        points.emplace_back(score_row.begin(), score_row.end());
    }

    const KMeansResult clusters = kMeans(points, k, rng);
    std::vector<std::string> selected;
    selected.reserve(k);
    for (std::size_t exemplar : clusters.exemplars)
        selected.push_back(data.benchmarks[exemplar].name);
    // k-means can (rarely) pick the same exemplar for two near-empty
    // clusters; dedupe and backfill greedily.
    std::sort(selected.begin(), selected.end());
    selected.erase(std::unique(selected.begin(), selected.end()),
                   selected.end());
    for (const BenchmarkData &bench : data.benchmarks) {
        if (selected.size() >= k)
            break;
        if (std::find(selected.begin(), selected.end(), bench.name) ==
            selected.end())
            selected.push_back(bench.name);
    }
    return evaluateSubset(table, data, std::move(selected));
}

} // namespace wct
