/**
 * @file
 * Binary serialization of collected suites (SuiteData), used by the
 * pipeline's collect stage artifacts and the determinism checks.
 *
 * The paper's workflow (Sections IV-VI) re-uses the same collected
 * suites across table generation, similarity, and transferability
 * runs, so a collected SuiteData serializes once into a checksummed
 * binary envelope (data/binary_io) with exact double bit patterns — a
 * reload is byte-identical to the collection that produced it. The
 * content addressing that used to live next to this code (PR 3's
 * collect_cache) is now the pipeline artifact store; see
 * pipeline/stages.hh for the collect stage key.
 */

#ifndef WCT_CORE_SUITE_IO_HH
#define WCT_CORE_SUITE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string_view>

#include "core/collect.hh"

namespace wct
{

/** Version of the SuiteData envelope; bump on layout changes. */
constexpr std::uint32_t kSuiteDataFormatVersion = 1;

/** Serialize a collected suite as a checksummed binary stream. */
void writeSuiteData(std::ostream &out, const SuiteData &data);

/**
 * Read a serialized suite; nullopt on any corruption, truncation,
 * version mismatch, or oversized claimed payload (kMaxFilePayload).
 */
std::optional<SuiteData> readSuiteData(std::istream &in);

/**
 * Parse a suite payload (the envelope's contents); nullopt on any
 * malformed byte. Split out from readSuiteData so the fuzz harness
 * can drive the parser directly, without first forging a valid
 * envelope checksum around each mutated input.
 */
std::optional<SuiteData> parseSuiteDataPayload(std::string_view payload);

} // namespace wct

#endif // WCT_CORE_SUITE_IO_HH
