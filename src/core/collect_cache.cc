#include "core/collect_cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/binary_io.hh"
#include "util/logging.hh"

namespace wct
{

namespace
{

constexpr char kSuiteMagic[] = "WCTSUIT"; ///< 7 chars + NUL = 8 bytes

/** Cap on parsed benchmark counts (a corrupt count must not OOM). */
constexpr std::uint64_t kMaxReasonableBenchmarks = 1u << 16;

void
appendCacheConfig(ByteSink &sink, const CacheConfig &config)
{
    sink.putU64(config.sizeBytes);
    sink.putU32(config.lineBytes);
    sink.putU32(config.ways);
    sink.putU32(static_cast<std::uint32_t>(config.policy));
}

void
appendTlbConfig(ByteSink &sink, const TlbConfig &config)
{
    sink.putU32(config.pageBytes);
    sink.putU32(config.entries);
    sink.putU32(config.ways);
    sink.putDouble(config.walkCycles);
    sink.putDouble(config.shortWalkCycles);
    sink.putU32(config.pdeEntries);
}

void
appendMachineConfig(ByteSink &sink, const CoreConfig &machine)
{
    appendCacheConfig(sink, machine.l1d);
    appendCacheConfig(sink, machine.l1i);
    appendCacheConfig(sink, machine.l2);
    appendTlbConfig(sink, machine.dtlb);
    appendTlbConfig(sink, machine.itlb);
    sink.putU32(machine.branch.tableBits);
    sink.putU32(machine.branch.historyBits);
    sink.putU32(machine.storeBuffer.entries);
    sink.putU32(machine.storeBuffer.lifetime);
    sink.putU32(machine.storeBuffer.staResolveAge);
    sink.putU32(machine.storeBuffer.stdResolveAge);
    sink.putDouble(machine.issueWidth);
    sink.putDouble(machine.mulExtraCycles);
    sink.putDouble(machine.divExtraCycles);
    sink.putDouble(machine.simdExtraCycles);
    sink.putDouble(machine.l1dMissCycles);
    sink.putDouble(machine.l1dMissExposed);
    sink.putDouble(machine.l2MissCycles);
    sink.putDouble(machine.l1iMissCycles);
    sink.putDouble(machine.l2iMissCycles);
    sink.putDouble(machine.mispredictCycles);
    sink.putDouble(machine.ldBlkStaCycles);
    sink.putDouble(machine.ldBlkStdCycles);
    sink.putDouble(machine.ldBlkOlpCycles);
    sink.putDouble(machine.splitCycles);
    sink.putDouble(machine.misalignCycles);
    sink.putDouble(machine.fpAssistCycles);
    sink.putDouble(machine.robWindowCycles);
    sink.putDouble(machine.mlpFactor);
    sink.putU8(machine.prefetchEnabled ? 1 : 0);
    sink.putU32(machine.prefetchStreak);
    sink.putU32(machine.prefetchStreams);
    sink.putU32(machine.prefetchDepth);
    sink.putDouble(machine.prefetchBandwidthDivisor);
}

void
appendPhaseProfile(ByteSink &sink, const PhaseProfile &phase)
{
    sink.putString(phase.name);
    sink.putDouble(phase.weight);
    sink.putDouble(phase.loadFrac);
    sink.putDouble(phase.storeFrac);
    sink.putDouble(phase.branchFrac);
    sink.putDouble(phase.mulFrac);
    sink.putDouble(phase.divFrac);
    sink.putDouble(phase.simdFrac);
    sink.putU64(phase.dataFootprint);
    sink.putU64(phase.hotBytes);
    sink.putDouble(phase.hotFrac);
    sink.putDouble(phase.streamFrac);
    sink.putDouble(phase.pointerChaseFrac);
    sink.putU8(phase.accessSize);
    sink.putDouble(phase.misalignFrac);
    sink.putDouble(phase.splitFrac);
    sink.putDouble(phase.aliasFrac);
    sink.putDouble(phase.overlapFrac);
    sink.putDouble(phase.slowStoreAddrFrac);
    sink.putDouble(phase.slowStoreDataFrac);
    sink.putDouble(phase.branchEntropy);
    sink.putDouble(phase.takenBias);
    sink.putU64(phase.codeFootprint);
    sink.putU64(phase.hotCodeBytes);
    sink.putDouble(phase.hotCodeFrac);
    sink.putDouble(phase.fpAssistFrac);
}

void
appendSuiteProfile(ByteSink &sink, const SuiteProfile &suite)
{
    sink.putString(suite.name);
    sink.putU64(suite.benchmarks.size());
    for (const BenchmarkProfile &bench : suite.benchmarks) {
        sink.putString(bench.name);
        sink.putString(bench.language);
        sink.putU8(bench.integer ? 1 : 0);
        sink.putDouble(bench.instructionWeight);
        sink.putU64(bench.phaseRunLength);
        sink.putU64(bench.phases.size());
        for (const PhaseProfile &phase : bench.phases)
            appendPhaseProfile(sink, phase);
    }
}

} // namespace

std::uint64_t
collectionCacheKey(const SuiteProfile &suite,
                   const CollectionConfig &config)
{
    // Hash the exact bit patterns of every input the samples depend
    // on; decimal formatting never enters the key.
    ByteSink sink;
    sink.putU32(kSuiteDataFormatVersion);
    appendSuiteProfile(sink, suite);
    sink.putU64(config.intervalInstructions);
    sink.putU64(config.baseIntervals);
    sink.putU64(config.warmupInstructions);
    sink.putU8(config.multiplexed ? 1 : 0);
    appendMachineConfig(sink, config.machine);
    sink.putU64(config.seed);
    sink.putU64(config.shards);
    return sink.hash();
}

std::string
collectionCachePath(const std::string &dir, const SuiteProfile &suite,
                    const CollectionConfig &config)
{
    const std::uint64_t key = collectionCacheKey(suite, config);
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(key));
    return (std::filesystem::path(dir) /
            (suite.name + "-" + hex + ".wctsuite"))
        .string();
}

void
writeSuiteData(std::ostream &out, const SuiteData &data)
{
    ByteSink sink;
    sink.putString(data.suiteName);
    sink.putU64(data.benchmarks.size());
    for (const BenchmarkData &bench : data.benchmarks) {
        sink.putString(bench.name);
        sink.putDouble(bench.instructionWeight);
        appendDataset(sink, bench.samples);
    }
    writeEnvelope(out, std::string_view(kSuiteMagic, 8),
                  kSuiteDataFormatVersion, sink.bytes());
}

std::optional<SuiteData>
readSuiteData(std::istream &in)
{
    const auto payload = readEnvelope(
        in, std::string_view(kSuiteMagic, 8), kSuiteDataFormatVersion);
    if (!payload)
        return std::nullopt;

    ByteParser parser(*payload);
    SuiteData data;
    std::uint64_t benchmarks = 0;
    if (!parser.getString(data.suiteName) ||
        !parser.getU64(benchmarks) ||
        benchmarks > kMaxReasonableBenchmarks)
        return std::nullopt;
    data.benchmarks.reserve(benchmarks);
    for (std::uint64_t i = 0; i < benchmarks; ++i) {
        BenchmarkData bench;
        if (!parser.getString(bench.name) ||
            !parser.getDouble(bench.instructionWeight))
            return std::nullopt;
        auto samples = parseDataset(parser);
        if (!samples)
            return std::nullopt;
        bench.samples = std::move(*samples);
        data.benchmarks.push_back(std::move(bench));
    }
    if (!parser.atEnd())
        return std::nullopt;
    return data;
}

void
storeSuiteData(const std::string &path, const SuiteData &data)
{
    namespace fs = std::filesystem;
    const fs::path target(path);
    if (target.has_parent_path())
        fs::create_directories(target.parent_path());

    // Write-then-rename so a crashed or concurrent run never leaves
    // a half-written file under the final name (rename within one
    // directory is atomic on POSIX).
    const fs::path temp(path + ".tmp");
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            wct_warn("cannot write collection cache file '",
                     temp.string(), "'");
            return;
        }
        writeSuiteData(out, data);
        if (!out) {
            wct_warn("short write to collection cache file '",
                     temp.string(), "'");
            return;
        }
    }
    std::error_code ec;
    fs::rename(temp, target, ec);
    if (ec)
        wct_warn("cannot move collection cache file into place: ",
                 ec.message());
}

std::optional<SuiteData>
loadSuiteData(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    return readSuiteData(in);
}

SuiteData
collectSuiteCached(const SuiteProfile &suite,
                   const CollectionConfig &config,
                   const std::string &cache_dir, bool *cache_hit)
{
    const std::string path =
        collectionCachePath(cache_dir, suite, config);
    if (std::filesystem::exists(path)) {
        if (auto cached = loadSuiteData(path)) {
            if (cache_hit != nullptr)
                *cache_hit = true;
            return std::move(*cached);
        }
        // The key matches but the bytes do not parse: truncated
        // write, bit rot, or a stale format. Re-collect and replace.
        wct_warn("ignoring corrupt or incompatible collection cache "
                 "file '", path, "'; re-collecting");
    }
    if (cache_hit != nullptr)
        *cache_hit = false;
    SuiteData data = collectSuite(suite, config);
    storeSuiteData(path, data);
    return data;
}

} // namespace wct
