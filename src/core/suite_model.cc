#include "core/suite_model.hh"

#include "data/split.hh"
#include "stats/descriptive.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace wct
{

SuiteModel
buildSuiteModel(const SuiteData &data, const SuiteModelConfig &config)
{
    wct_assert(config.trainFraction > 0.0 &&
               config.trainFraction <= 0.5,
               "train fraction must be in (0, 0.5] for disjoint "
               "train/test, got ", config.trainFraction);

    SuiteModel model;
    model.suiteName = data.suiteName;

    const Dataset pooled = data.pooled();
    if (pooled.numRows() == 0)
        wct_fatal("suite '", data.suiteName, "' has no samples");
    const auto cpi = pooled.column(config.target);
    model.meanCpi = mean(cpi);

    Rng rng(config.seed);
    TrainTestSplit split =
        disjointFractions(pooled, config.trainFraction, rng);
    model.train = std::move(split.train);
    model.test = std::move(split.test);
    model.tree =
        ModelTree::train(model.train, config.target, config.tree);
    return model;
}

} // namespace wct
