/**
 * @file
 * Model transferability assessment (Section VI of the paper).
 *
 * A model trained on data from workload population P is transferable
 * to population Q when it can accurately study Q. Two methodologies:
 *
 *  1. Two-sample hypothesis tests (Section VI-A): compare the CPI
 *     distribution of the training data against the target data
 *     (H0: same population), and the predicted against the actual
 *     CPI on the target data (H0: same mean).
 *  2. Prediction-accuracy metrics (Section VI-B): correlation C and
 *     MAE of the model's predictions on the target data against the
 *     acceptance thresholds C > 0.85, MAE < 0.15.
 */

#ifndef WCT_CORE_TRANSFERABILITY_HH
#define WCT_CORE_TRANSFERABILITY_HH

#include <string>

#include "data/dataset.hh"
#include "mtree/regressor.hh"
#include "stats/bootstrap.hh"
#include "stats/metrics.hh"
#include "stats/tests.hh"

namespace wct
{

/** Thresholds for the two assessment methodologies. */
struct TransferabilityConfig
{
    /** Significance level of the hypothesis tests. */
    double alpha = 0.05;

    /** Minimum acceptable prediction correlation. */
    double minCorrelation = 0.85;

    /** Maximum acceptable mean absolute error (target units). */
    double maxMae = 0.15;

    /** Also run the non-parametric tests (Mann-Whitney, Levene). */
    bool nonParametric = true;

    /**
     * Bootstrap replicates for confidence intervals on C and MAE
     * (0 disables). With intervals available, a verdict whose
     * threshold falls inside the interval is flagged as unstable.
     */
    std::size_t bootstrapReplicates = 0;

    /** Two-sided confidence level for the bootstrap intervals. */
    double bootstrapConfidence = 0.95;

    /** Seed for bootstrap resampling. */
    std::uint64_t bootstrapSeed = 0xb007;

    /** Model name rendered in the report header. */
    std::string modelName = "model";

    /** Target-population name rendered in the report header. */
    std::string targetName = "target";
};

/** Full outcome of one transferability assessment. */
struct TransferabilityReport
{
    std::string modelName;
    std::string targetName;

    // ---- Section VI-A: two-sample hypothesis tests. ----
    /** Training CPI vs target CPI (H0: same population mean). */
    TestResult cpiTest;

    /** Predicted vs actual CPI on the target (H0: same mean). */
    TestResult predictionTest;

    /** Mann-Whitney U on training vs target CPI (optional). */
    TestResult mannWhitney;

    /** Levene variance test on training vs target CPI (optional). */
    TestResult levene;

    // ---- Section VI-B: prediction accuracy. ----
    AccuracyMetrics accuracy;

    /** Bootstrap interval for C (when enabled). */
    ConfidenceInterval correlationCi;

    /** Bootstrap interval for MAE (when enabled). */
    ConfidenceInterval maeCi;

    /** True when bootstrap intervals were computed. */
    bool hasBootstrap = false;

    /**
     * True when the accuracy verdict could flip within the bootstrap
     * intervals (a threshold lies inside an interval).
     */
    bool accuracyVerdictUnstable() const;

    // ---- Descriptive statistics echoed by the paper. ----
    std::size_t trainCount = 0;
    std::size_t targetCount = 0;
    double trainMeanCpi = 0.0;
    double targetMeanCpi = 0.0;
    double predictedMeanCpi = 0.0;
    double trainSdCpi = 0.0;
    double targetSdCpi = 0.0;
    double predictedSdCpi = 0.0;

    TransferabilityConfig config;

    /** Verdict of the hypothesis-test methodology. */
    bool
    transferableByTests() const
    {
        return !cpiTest.rejectAt(config.alpha) &&
            !predictionTest.rejectAt(config.alpha);
    }

    /** Verdict of the accuracy-metric methodology. */
    bool
    transferableByAccuracy() const
    {
        return accuracy.acceptable(config.minCorrelation,
                                   config.maxMae);
    }

    /** Human-readable report. */
    std::string render() const;
};

/**
 * Assess whether `model` (trained on `train`) transfers to `target`.
 * Both datasets must use the model's training schema.
 */
TransferabilityReport assessTransferability(
    const Regressor &model, const Dataset &train, const Dataset &target,
    const TransferabilityConfig &config = {});

} // namespace wct

#endif // WCT_CORE_TRANSFERABILITY_HH
