/**
 * @file
 * Temporal phase analysis of a workload through a suite model's
 * behaviour classes.
 *
 * The paper's introduction motivates model trees with the observation
 * that "distinct workloads or dissimilar parts of the same workload
 * can be affected very differently by any one performance factor".
 * Classifying a benchmark's intervals *in execution order* exposes
 * exactly that: phase runs (stretches of consecutive intervals in the
 * same leaf), transitions between behaviour classes, and how
 * phase-heterogeneous a workload is.
 */

#ifndef WCT_CORE_PHASE_REPORT_HH
#define WCT_CORE_PHASE_REPORT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.hh"
#include "mtree/model_tree.hh"

namespace wct
{

/** A maximal stretch of consecutive intervals in one leaf. */
struct PhaseRun
{
    std::size_t leaf = 0;   ///< 0-based leaf index
    std::size_t start = 0;  ///< first interval index
    std::size_t length = 0; ///< intervals in the run
};

/** Temporal phase structure of one benchmark under one tree. */
class PhaseReport
{
  public:
    /**
     * Classify samples (rows must be in execution order, as produced
     * by the interval collector) and derive the phase structure.
     */
    PhaseReport(const ModelTree &tree, const Dataset &samples);

    /** Leaf index per interval, in execution order. */
    const std::vector<std::size_t> &sequence() const
    {
        return sequence_;
    }

    /** Maximal same-leaf runs. */
    const std::vector<PhaseRun> &runs() const { return runs_; }

    /** Number of leaf changes between adjacent intervals. */
    std::size_t numTransitions() const
    {
        return runs_.empty() ? 0 : runs_.size() - 1;
    }

    /** Mean run length in intervals. */
    double meanRunLength() const;

    /** Number of distinct leaves visited. */
    std::size_t distinctLeaves() const;

    /**
     * Shannon entropy (bits) of the leaf distribution; 0 for a
     * single-phase workload, log2(k) for uniform use of k leaves.
     */
    double leafEntropy() const;

    /**
     * Row-stochastic transition matrix between *distinct* visited
     * leaves: element [i][j] is P(next visited leaf j | leaf i),
     * indexed by position in visitedLeaves().
     */
    const std::vector<std::vector<double>> &transitionMatrix() const
    {
        return transitions_;
    }

    /** Leaves visited, ascending, indexing transitionMatrix(). */
    const std::vector<std::size_t> &visitedLeaves() const
    {
        return visited_;
    }

    /** Compact text rendering with a phase timeline strip. */
    std::string render(std::size_t strip_width = 64) const;

  private:
    std::size_t numLeaves_ = 0;
    std::vector<std::size_t> sequence_;
    std::vector<PhaseRun> runs_;
    std::vector<std::size_t> visited_;
    std::vector<std::vector<double>> transitions_;
};

} // namespace wct

#endif // WCT_CORE_PHASE_REPORT_HH
