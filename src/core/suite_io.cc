#include "core/suite_io.hh"

#include "data/binary_io.hh"

namespace wct
{

namespace
{

constexpr char kSuiteMagic[] = "WCTSUIT"; ///< 7 chars + NUL = 8 bytes

/** Cap on parsed benchmark counts (a corrupt count must not OOM). */
constexpr std::uint64_t kMaxReasonableBenchmarks = 1u << 16;

} // namespace

void
writeSuiteData(std::ostream &out, const SuiteData &data)
{
    ByteSink sink;
    sink.putString(data.suiteName);
    sink.putU64(data.benchmarks.size());
    for (const BenchmarkData &bench : data.benchmarks) {
        sink.putString(bench.name);
        sink.putDouble(bench.instructionWeight);
        appendDataset(sink, bench.samples);
    }
    writeEnvelope(out, std::string_view(kSuiteMagic, 8),
                  kSuiteDataFormatVersion, sink.bytes());
}

std::optional<SuiteData>
readSuiteData(std::istream &in)
{
    const auto payload =
        readEnvelope(in, std::string_view(kSuiteMagic, 8),
                     kSuiteDataFormatVersion, kMaxFilePayload);
    if (!payload)
        return std::nullopt;
    return parseSuiteDataPayload(*payload);
}

std::optional<SuiteData>
parseSuiteDataPayload(std::string_view payload)
{
    ByteParser parser(payload);
    SuiteData data;
    std::uint64_t benchmarks = 0;
    if (!parser.getString(data.suiteName) ||
        !parser.getU64(benchmarks) ||
        benchmarks > kMaxReasonableBenchmarks)
        return std::nullopt;
    data.benchmarks.reserve(benchmarks);
    for (std::uint64_t i = 0; i < benchmarks; ++i) {
        BenchmarkData bench;
        if (!parser.getString(bench.name) ||
            !parser.getDouble(bench.instructionWeight))
            return std::nullopt;
        auto samples = parseDataset(parser);
        if (!samples)
            return std::nullopt;
        bench.samples = std::move(*samples);
        data.benchmarks.push_back(std::move(bench));
    }
    if (!parser.atEnd())
        return std::nullopt;
    return data;
}

} // namespace wct
