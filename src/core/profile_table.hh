/**
 * @file
 * Per-benchmark linear-model distribution profiles (Tables II and IV
 * of the paper): classify every sample of every benchmark into the
 * suite tree's leaves and tabulate the percentage per leaf.
 */

#ifndef WCT_CORE_PROFILE_TABLE_HH
#define WCT_CORE_PROFILE_TABLE_HH

#include <string>
#include <vector>

#include "core/collect.hh"
#include "mtree/model_tree.hh"

namespace wct
{

/** One benchmark's distribution over the leaf models, in percent. */
struct BenchmarkProfileRow
{
    std::string name;
    std::vector<double> percent; ///< one entry per leaf, sums to 100
    double meanCpi = 0.0;
};

/** The full distribution table of a suite against a tree model. */
class ProfileTable
{
  public:
    /**
     * Classify each benchmark's samples with the tree. The "Suite"
     * row pools every sample (each benchmark's sample count is
     * already proportional to its instruction weight, matching the
     * paper's weighting); the "Average" row averages the benchmark
     * rows with equal weight.
     */
    ProfileTable(const SuiteData &data, const ModelTree &tree);

    /**
     * Rebuild a table from previously computed rows (the pipeline's
     * classify-stage artifact decode); the classifying constructor
     * above is the only producer of such rows.
     */
    ProfileTable(std::size_t num_models,
                 std::vector<BenchmarkProfileRow> rows,
                 BenchmarkProfileRow suite,
                 BenchmarkProfileRow average);

    /** Number of leaf models (columns). */
    std::size_t numModels() const { return numModels_; }

    /** Per-benchmark rows, in suite order. */
    const std::vector<BenchmarkProfileRow> &rows() const
    {
        return rows_;
    }

    /** The pooled suite distribution (percent per leaf). */
    const BenchmarkProfileRow &suiteRow() const { return suite_; }

    /** The equal-weight average distribution. */
    const BenchmarkProfileRow &averageRow() const { return average_; }

    /** Distribution of one benchmark; fatal when absent. */
    const BenchmarkProfileRow &row(const std::string &name) const;

    /**
     * L1 (Manhattan) profile distance between two rows in percent:
     * D = 0.5 * sum_i |s_i,a - s_i,b|  (Equation 4).
     */
    static double distance(const BenchmarkProfileRow &a,
                           const BenchmarkProfileRow &b);

    /** Render in the paper's Table II layout. */
    std::string render(double bold_threshold = 20.0) const;

  private:
    static BenchmarkProfileRow classifyInto(
        const std::string &name, const Dataset &samples,
        const ModelTree &tree);

    std::size_t numModels_ = 0;
    std::vector<BenchmarkProfileRow> rows_;
    BenchmarkProfileRow suite_;
    BenchmarkProfileRow average_;
};

} // namespace wct

#endif // WCT_CORE_PROFILE_TABLE_HH
