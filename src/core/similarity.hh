/**
 * @file
 * Benchmark similarity from linear-model profiles (Table III of the
 * paper): pairwise L1 distances between the per-benchmark leaf
 * distributions, plus each benchmark's distance to the whole suite.
 */

#ifndef WCT_CORE_SIMILARITY_HH
#define WCT_CORE_SIMILARITY_HH

#include <string>
#include <vector>

#include "core/profile_table.hh"

namespace wct
{

/** Pairwise profile-distance matrix over a set of benchmarks. */
class SimilarityMatrix
{
  public:
    /**
     * Build from a profile table.
     * @param subset Names to include; empty selects every benchmark.
     */
    explicit SimilarityMatrix(const ProfileTable &table,
                              std::vector<std::string> subset = {});

    /**
     * Rebuild from previously computed distances (the pipeline's
     * similarity-stage artifact decode). `matrix` is n x n row-major
     * and `toSuite` has one entry per name.
     */
    SimilarityMatrix(std::vector<std::string> names,
                     std::vector<double> matrix,
                     std::vector<double> toSuite);

    const std::vector<std::string> &names() const { return names_; }

    /** Distance (percent, Equation 4) between benchmarks i and j. */
    double at(std::size_t i, std::size_t j) const;

    /** Distance between a benchmark and the pooled suite profile. */
    double distanceToSuite(std::size_t i) const;

    /** Indices of the most similar pair (i < j). */
    std::pair<std::size_t, std::size_t> mostSimilarPair() const;

    /** Indices of the most dissimilar pair (i < j). */
    std::pair<std::size_t, std::size_t> mostDissimilarPair() const;

    /** Render in the paper's Table III layout (with a Suite row). */
    std::string render() const;

  private:
    std::vector<std::string> names_;
    std::vector<double> matrix_; ///< n x n, row-major
    std::vector<double> toSuite_;
};

} // namespace wct

#endif // WCT_CORE_SIMILARITY_HH
