/**
 * @file
 * Suite-level sample collection: run every benchmark of a suite
 * through the simulated machine and PMU, producing the per-interval
 * metric datasets everything downstream consumes.
 */

#ifndef WCT_CORE_COLLECT_HH
#define WCT_CORE_COLLECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hh"
#include "pmu/collector.hh"
#include "uarch/core.hh"
#include "workload/profile.hh"

namespace wct
{

/** Knobs for one suite collection run. */
struct CollectionConfig
{
    /** Instructions per sample interval (Section III's 2 M, scaled). */
    std::uint64_t intervalInstructions = 4096;

    /**
     * Base number of intervals; each benchmark contributes
     * round(base * instructionWeight) samples, reproducing the
     * paper's sampling proportional to dynamic instruction count.
     */
    std::size_t baseIntervals = 400;

    /** Instructions executed before sampling starts (cache warmup). */
    std::uint64_t warmupInstructions = 1'500'000;

    /** Round-robin counter multiplexing (Section III) or exact. */
    bool multiplexed = true;

    /** Machine configuration. */
    CoreConfig machine{};

    /** Root seed; benchmark streams fork deterministically from it. */
    std::uint64_t seed = 0x5eed;

    /**
     * Independently seeded stream shards per benchmark. Each shard
     * runs its own machine, workload stream, and collector, so a
     * benchmark's intervals can be collected in parallel; shard
     * seeds derive from the stable benchmark name (never from suite
     * order or thread schedule), making the result a pure function
     * of this config. `shards = 1` reproduces the single sequential
     * stream exactly. More shards change the sampled data (each
     * shard is a fresh warmup and stream) — pick one value per
     * experiment and keep it in the cache key.
     */
    std::size_t shards = 1;
};

/** Collected samples of one benchmark. */
struct BenchmarkData
{
    std::string name;
    double instructionWeight = 1.0;
    Dataset samples;
};

/** Collected samples of a whole suite. */
struct SuiteData
{
    std::string suiteName;
    std::vector<BenchmarkData> benchmarks;

    /** All samples of all benchmarks concatenated. */
    Dataset pooled() const;

    /** Samples of one benchmark; fatal when absent. */
    const BenchmarkData &benchmark(const std::string &name) const;

    /** Total sample count. */
    std::size_t totalSamples() const;
};

/**
 * Stable per-benchmark stream salt: an FNV-1a hash of the benchmark
 * name. Deriving the salt from the name (not the suite position)
 * means filtering or reordering a suite never changes any
 * benchmark's samples.
 */
std::uint64_t benchmarkStreamSalt(const std::string &name);

/** Contiguous run of intervals one shard collects. */
struct ShardSpec
{
    std::size_t firstInterval = 0;
    std::size_t intervals = 0;
};

/**
 * Split a benchmark's intervals (round(base * weight), >= 1) into
 * balanced contiguous shards. Shard count is clamped so every shard
 * collects at least one interval; the plan depends only on the
 * benchmark profile and the config, never on threads. Exposed so the
 * staged pipeline can address every (benchmark, shard) task as its
 * own store artifact (pipeline/stages.hh collectShardKey) and
 * `wct cache gc` can enumerate the same ids without collecting.
 */
std::vector<ShardSpec> shardPlan(const BenchmarkProfile &bench,
                                 const CollectionConfig &config);

/**
 * Collect one shard: a fresh machine and an independently seeded
 * stream. Shard 0 uses the benchmark's base stream seed, so a
 * one-shard plan reproduces the historical sequential stream bit for
 * bit; later shards fork from that seed by shard index. A shard is a
 * pure function of (benchmark profile, config, shard, spec) — the
 * unit of cross-worker deduplication in the shared artifact store.
 */
Dataset collectShard(const BenchmarkProfile &bench,
                     const CollectionConfig &config,
                     std::size_t shard, const ShardSpec &spec);

/**
 * Collect a suite: per benchmark, `config.shards` fresh machines are
 * warmed up and sampled for that shard's share of
 * round(base * weight) intervals. (Benchmark, shard) tasks fan out
 * over the global work-stealing pool and land in pre-assigned slots,
 * so the result is byte-identical for any WCT_THREADS.
 */
SuiteData collectSuite(const SuiteProfile &suite,
                       const CollectionConfig &config);

/** Collect a single benchmark with the same protocol. */
BenchmarkData collectBenchmark(const BenchmarkProfile &bench,
                               const CollectionConfig &config);

} // namespace wct

#endif // WCT_CORE_COLLECT_HH
