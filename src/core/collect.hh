/**
 * @file
 * Suite-level sample collection: run every benchmark of a suite
 * through the simulated machine and PMU, producing the per-interval
 * metric datasets everything downstream consumes.
 */

#ifndef WCT_CORE_COLLECT_HH
#define WCT_CORE_COLLECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hh"
#include "pmu/collector.hh"
#include "uarch/core.hh"
#include "workload/profile.hh"

namespace wct
{

/** Knobs for one suite collection run. */
struct CollectionConfig
{
    /** Instructions per sample interval (Section III's 2 M, scaled). */
    std::uint64_t intervalInstructions = 4096;

    /**
     * Base number of intervals; each benchmark contributes
     * round(base * instructionWeight) samples, reproducing the
     * paper's sampling proportional to dynamic instruction count.
     */
    std::size_t baseIntervals = 400;

    /** Instructions executed before sampling starts (cache warmup). */
    std::uint64_t warmupInstructions = 1'500'000;

    /** Round-robin counter multiplexing (Section III) or exact. */
    bool multiplexed = true;

    /** Machine configuration. */
    CoreConfig machine{};

    /** Root seed; benchmark streams fork deterministically from it. */
    std::uint64_t seed = 0x5eed;
};

/** Collected samples of one benchmark. */
struct BenchmarkData
{
    std::string name;
    double instructionWeight = 1.0;
    Dataset samples;
};

/** Collected samples of a whole suite. */
struct SuiteData
{
    std::string suiteName;
    std::vector<BenchmarkData> benchmarks;

    /** All samples of all benchmarks concatenated. */
    Dataset pooled() const;

    /** Samples of one benchmark; fatal when absent. */
    const BenchmarkData &benchmark(const std::string &name) const;

    /** Total sample count. */
    std::size_t totalSamples() const;
};

/**
 * Collect a suite: per benchmark, a fresh machine is warmed up and
 * then sampled for round(base * weight) intervals.
 */
SuiteData collectSuite(const SuiteProfile &suite,
                       const CollectionConfig &config);

/** Collect a single benchmark with the same protocol. */
BenchmarkData collectBenchmark(const BenchmarkProfile &bench,
                               const CollectionConfig &config,
                               std::uint64_t stream_salt = 0);

} // namespace wct

#endif // WCT_CORE_COLLECT_HH
