/**
 * @file
 * Benchmark suite subsetting — the application the paper's related
 * work ([11]-[14]) identifies as the main use of benchmark
 * characterization: choose k of the n benchmarks such that the subset
 * behaves like the whole suite (to cut simulation cost).
 *
 * Three selectors are provided:
 *  - greedy profile matching: repeatedly add the benchmark that
 *    brings the weighted subset LM-profile closest to the suite
 *    profile (uses this paper's Table II machinery);
 *  - k-medoids over the Table III pairwise profile distances;
 *  - PCA + k-means over per-benchmark mean event vectors (the
 *    methodology of [12], [13]), as a baseline.
 */

#ifndef WCT_CORE_SUBSET_HH
#define WCT_CORE_SUBSET_HH

#include <string>
#include <vector>

#include "core/profile_table.hh"
#include "util/rng.hh"

namespace wct
{

/** A selected subset and its quality measures. */
struct SubsetResult
{
    /** Names of the selected benchmarks. */
    std::vector<std::string> selected;

    /**
     * L1 distance (percent) between the weight-combined profile of
     * the subset and the full suite profile; 0 = perfect stand-in.
     */
    double profileDistance = 0.0;

    /** |weighted mean CPI of subset - suite mean CPI|. */
    double cpiError = 0.0;
};

/**
 * Profile of a weighted combination of benchmarks, in percent (the
 * natural extension of Table II's "Suite" row to a subset).
 */
BenchmarkProfileRow combineProfiles(
    const ProfileTable &table, const SuiteData &data,
    const std::vector<std::string> &names);

/** Evaluate an arbitrary subset against the suite. */
SubsetResult evaluateSubset(const ProfileTable &table,
                            const SuiteData &data,
                            std::vector<std::string> names);

/** Greedy forward selection minimising the subset-suite distance. */
SubsetResult selectGreedyProfile(const ProfileTable &table,
                                 const SuiteData &data, std::size_t k);

/** k-medoids on the pairwise profile distance matrix. */
SubsetResult selectByMedoids(const ProfileTable &table,
                             const SuiteData &data, std::size_t k);

/**
 * Baseline: standardised PCA on per-benchmark mean event densities
 * (components covering >= 90% variance), k-means in PC space, and one
 * exemplar per cluster ([12], [13]).
 */
SubsetResult selectByPcaClustering(const ProfileTable &table,
                                   const SuiteData &data,
                                   std::size_t k, Rng &rng);

} // namespace wct

#endif // WCT_CORE_SUBSET_HH
