#include "core/transferability.hh"

#include "stats/descriptive.hh"
#include "util/rng.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace wct
{

TransferabilityReport
assessTransferability(const Regressor &model, const Dataset &train,
                      const Dataset &target,
                      const TransferabilityConfig &config)
{
    model.checkSchema(train);
    model.checkSchema(target);

    TransferabilityReport report;
    report.config = config;
    report.modelName = config.modelName;
    report.targetName = config.targetName;

    const auto train_cpi = train.column(model.targetName());
    const auto target_cpi = target.column(model.targetName());
    const auto predicted = model.predictAll(target);

    report.trainCount = train_cpi.size();
    report.targetCount = target_cpi.size();
    report.trainMeanCpi = mean(train_cpi);
    report.targetMeanCpi = mean(target_cpi);
    report.predictedMeanCpi = mean(predicted);
    report.trainSdCpi = sampleStddev(train_cpi);
    report.targetSdCpi = sampleStddev(target_cpi);
    report.predictedSdCpi = sampleStddev(predicted);

    // Section VI-A: t-test on the dependent variable across the two
    // populations, and on predicted-vs-actual over the target.
    report.cpiTest = pooledTTest(train_cpi, target_cpi);
    report.predictionTest = pooledTTest(predicted, target_cpi);
    if (config.nonParametric) {
        report.mannWhitney = mannWhitneyUTest(train_cpi, target_cpi);
        report.levene = leveneTest(train_cpi, target_cpi);
    }

    // Section VI-B: prediction accuracy metrics.
    report.accuracy = computeAccuracy(predicted, target_cpi);

    if (config.bootstrapReplicates > 0) {
        Rng rng(config.bootstrapSeed);
        report.hasBootstrap = true;
        report.correlationCi = bootstrapPairedCi(
            predicted, target_cpi,
            [](std::span<const double> p, std::span<const double> a) {
                return pearsonCorrelation(p, a);
            },
            rng, config.bootstrapReplicates,
            config.bootstrapConfidence);
        report.maeCi = bootstrapPairedCi(
            predicted, target_cpi,
            [](std::span<const double> p, std::span<const double> a) {
                return meanAbsoluteError(p, a);
            },
            rng, config.bootstrapReplicates,
            config.bootstrapConfidence);
    }
    return report;
}

bool
TransferabilityReport::accuracyVerdictUnstable() const
{
    if (!hasBootstrap)
        return false;
    return correlationCi.contains(config.minCorrelation) ||
        maeCi.contains(config.maxMae);
}

std::string
TransferabilityReport::render() const
{
    std::string out;
    out += "transferability of " + modelName + " -> " + targetName +
        "\n";
    out += "  populations: n=" + std::to_string(trainCount) +
        " (mean CPI " + formatDouble(trainMeanCpi, 4) + ", sd " +
        formatDouble(trainSdCpi, 4) + ")  m=" +
        std::to_string(targetCount) + " (mean CPI " +
        formatDouble(targetMeanCpi, 4) + ", sd " +
        formatDouble(targetSdCpi, 4) + ")\n";
    out += "  predicted on target: mean " +
        formatDouble(predictedMeanCpi, 4) + ", sd " +
        formatDouble(predictedSdCpi, 4) + "\n";
    out += "  t-test (train vs target CPI): t = " +
        formatDouble(cpiTest.statistic, 3) +
        ", p = " + formatCompact(cpiTest.pValue) +
        (cpiTest.rejectAt(config.alpha) ? "  [reject H0]"
                                        : "  [accept H0]") +
        "\n";
    out += "  t-test (predicted vs actual): t = " +
        formatDouble(predictionTest.statistic, 3) +
        ", p = " + formatCompact(predictionTest.pValue) +
        (predictionTest.rejectAt(config.alpha) ? "  [reject H0]"
                                               : "  [accept H0]") +
        "\n";
    if (config.nonParametric) {
        out += "  Mann-Whitney U: p = " +
            formatCompact(mannWhitney.pValue) +
            (mannWhitney.rejectAt(config.alpha) ? "  [reject H0]"
                                                : "  [accept H0]") +
            "\n";
        out += "  Levene (variances): p = " +
            formatCompact(levene.pValue) +
            (levene.rejectAt(config.alpha) ? "  [reject H0]"
                                           : "  [accept H0]") +
            "\n";
    }
    out += "  accuracy: C = " + formatDouble(accuracy.correlation, 4) +
        ", MAE = " + formatDouble(accuracy.meanAbsoluteError, 4) +
        ", RMSE = " +
        formatDouble(accuracy.rootMeanSquaredError, 4) + "\n";
    if (hasBootstrap) {
        out += "  bootstrap " +
            formatDouble(100.0 * config.bootstrapConfidence, 0) +
            "% CIs: C in [" + formatDouble(correlationCi.lower, 4) +
            ", " + formatDouble(correlationCi.upper, 4) +
            "], MAE in [" + formatDouble(maeCi.lower, 4) + ", " +
            formatDouble(maeCi.upper, 4) + "]" +
            (accuracyVerdictUnstable() ? "  [verdict unstable]"
                                       : "  [verdict stable]") +
            "\n";
    }
    out += std::string("  verdicts: hypothesis tests -> ") +
        (transferableByTests() ? "transferable" : "NOT transferable") +
        "; accuracy metrics -> " +
        (transferableByAccuracy() ? "transferable"
                                  : "NOT transferable") +
        "\n";
    return out;
}

} // namespace wct
