/**
 * @file
 * A suite performance model: the M5' tree trained on a random
 * fraction of a suite's pooled samples (Section VI trains on 10%),
 * together with the independent test fraction used for
 * transferability assessment.
 */

#ifndef WCT_CORE_SUITE_MODEL_HH
#define WCT_CORE_SUITE_MODEL_HH

#include <string>

#include "core/collect.hh"
#include "mtree/model_tree.hh"

namespace wct
{

/** Modeling knobs for suite models. */
struct SuiteModelConfig
{
    /** Fraction of pooled samples used for training (paper: 10%). */
    double trainFraction = 0.10;

    /** Target metric column. */
    std::string target = "CPI";

    /** Tree hyper-parameters (tuned for tractable tree size). */
    ModelTreeConfig tree{
        .minLeafInstances = 8,
        .minLeafFraction = 0.02,
        .sdThresholdFraction = 0.05,
    };

    /** Split seed. */
    std::uint64_t seed = 0xcafe;
};

/** A trained suite model with its train/test material. */
struct SuiteModel
{
    std::string suiteName;
    ModelTree tree;

    /** Training fraction (disjoint from test). */
    Dataset train;

    /** Independent test fraction of equal size. */
    Dataset test;

    /** Average CPI over all pooled samples. */
    double meanCpi = 0.0;
};

/**
 * Train a suite model per the Section VI protocol: draw two disjoint
 * random fractions of the pooled samples, train the tree on the
 * first, keep the second for testing.
 */
SuiteModel buildSuiteModel(const SuiteData &data,
                           const SuiteModelConfig &config = {});

} // namespace wct

#endif // WCT_CORE_SUITE_MODEL_HH
