/**
 * @file
 * Content-addressed on-disk cache of collected suites.
 *
 * The paper's workflow (Sections IV-VI) re-uses the same collected
 * suites across table generation, similarity, and transferability
 * runs, so collection is treated as a cached dataset artifact: a
 * collected SuiteData is serialized once into a checksummed binary
 * file whose name encodes a hash of everything the samples depend on
 * — the suite profile, the full CollectionConfig (machine model,
 * sampling knobs, seed, shard count), and the format version. A
 * repeated run with the same inputs loads a byte-identical dataset
 * instead of re-simulating; any input change selects a different
 * file and re-collects. Corrupt, truncated, or version-mismatched
 * cache files are rejected with a warning and fall back to a fresh
 * collection that overwrites the bad entry.
 *
 * Cache layout: `<dir>/<suite-name>-<16-hex-digit key>.wctsuite`.
 */

#ifndef WCT_CORE_COLLECT_CACHE_HH
#define WCT_CORE_COLLECT_CACHE_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "core/collect.hh"

namespace wct
{

/** Version of the .wctsuite envelope; bump on layout changes. */
constexpr std::uint32_t kSuiteDataFormatVersion = 1;

/**
 * Content key of one (suite, config) collection: an FNV-1a hash of
 * the binary encoding of the format version, every profile field of
 * every benchmark, and every CollectionConfig field including the
 * machine model. Two runs share a key iff they would collect
 * identical data.
 */
std::uint64_t collectionCacheKey(const SuiteProfile &suite,
                                 const CollectionConfig &config);

/** Cache file path of one (suite, config) pair under `dir`. */
std::string collectionCachePath(const std::string &dir,
                                const SuiteProfile &suite,
                                const CollectionConfig &config);

/** Serialize a collected suite as a checksummed binary stream. */
void writeSuiteData(std::ostream &out, const SuiteData &data);

/** Read a serialized suite; nullopt on any corruption or mismatch. */
std::optional<SuiteData> readSuiteData(std::istream &in);

/** Write a suite to a cache file (atomically via a temp file). */
void storeSuiteData(const std::string &path, const SuiteData &data);

/**
 * Load a suite from a cache file; nullopt when the file is missing,
 * truncated, corrupt, or from a different format version.
 */
std::optional<SuiteData> loadSuiteData(const std::string &path);

/**
 * Cached front end of collectSuite: load the suite from `cache_dir`
 * when a valid entry for this (suite, config) exists, otherwise
 * collect and store it. Invalid entries warn and are overwritten.
 *
 * @param cache_hit Set (when non-null) to whether the suite was
 *                  served from the cache without simulating.
 */
SuiteData collectSuiteCached(const SuiteProfile &suite,
                             const CollectionConfig &config,
                             const std::string &cache_dir,
                             bool *cache_hit = nullptr);

} // namespace wct

#endif // WCT_CORE_COLLECT_CACHE_HH
