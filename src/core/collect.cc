#include "core/collect.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"
#include "workload/source.hh"

namespace wct
{

Dataset
SuiteData::pooled() const
{
    // Derive the schema from the collected samples rather than
    // assuming the PMU metric layout: suites assembled from other
    // sources (e.g. synthetic test data) pool the same way, and
    // append() still asserts every benchmark agrees.
    Dataset all(benchmarks.empty()
                    ? metricColumnNames()
                    : benchmarks.front().samples.columnNames());
    for (const BenchmarkData &bench : benchmarks)
        all.append(bench.samples);
    return all;
}

const BenchmarkData &
SuiteData::benchmark(const std::string &name) const
{
    for (const BenchmarkData &bench : benchmarks)
        if (bench.name == name)
            return bench;
    wct_fatal("no collected data for benchmark '", name, "'");
}

std::size_t
SuiteData::totalSamples() const
{
    std::size_t total = 0;
    for (const BenchmarkData &bench : benchmarks)
        total += bench.samples.numRows();
    return total;
}

BenchmarkData
collectBenchmark(const BenchmarkProfile &bench,
                 const CollectionConfig &config,
                 std::uint64_t stream_salt)
{
    BenchmarkData out;
    out.name = bench.name;
    out.instructionWeight = bench.instructionWeight;

    CoreModel core(config.machine);
    CollectorConfig pmu_config;
    pmu_config.intervalInstructions = config.intervalInstructions;
    pmu_config.multiplexed = config.multiplexed;
    IntervalCollector collector(core, pmu_config);

    // Deterministic per-benchmark stream seed.
    const std::uint64_t stream_seed =
        Rng(config.seed).fork(stream_salt)();
    WorkloadSource source(bench, stream_seed);

    // Warm caches, TLBs, and the predictor before sampling, as
    // hardware collection effectively does (the first intervals of a
    // long run are a vanishing fraction of the total).
    core.run(source, config.warmupInstructions);

    const auto intervals = static_cast<std::size_t>(std::llround(
        static_cast<double>(config.baseIntervals) *
        bench.instructionWeight));
    out.samples = collector.collect(source, std::max<std::size_t>(
        intervals, 1));
    return out;
}

SuiteData
collectSuite(const SuiteProfile &suite, const CollectionConfig &config)
{
    SuiteData out;
    out.suiteName = suite.name;
    out.benchmarks.reserve(suite.benchmarks.size());
    for (std::size_t i = 0; i < suite.benchmarks.size(); ++i)
        out.benchmarks.push_back(
            collectBenchmark(suite.benchmarks[i], config, i));
    return out;
}

} // namespace wct
