#include "core/collect.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "data/binary_io.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"
#include "workload/source.hh"

namespace wct
{

Dataset
SuiteData::pooled() const
{
    // Derive the schema from the collected samples rather than
    // assuming the PMU metric layout: suites assembled from other
    // sources (e.g. synthetic test data) pool the same way, and
    // append() still asserts every benchmark agrees.
    Dataset all(benchmarks.empty()
                    ? metricColumnNames()
                    : benchmarks.front().samples.columnNames());
    for (const BenchmarkData &bench : benchmarks)
        all.append(bench.samples);
    return all;
}

const BenchmarkData &
SuiteData::benchmark(const std::string &name) const
{
    for (const BenchmarkData &bench : benchmarks)
        if (bench.name == name)
            return bench;
    wct_fatal("no collected data for benchmark '", name, "'");
}

std::size_t
SuiteData::totalSamples() const
{
    std::size_t total = 0;
    for (const BenchmarkData &bench : benchmarks)
        total += bench.samples.numRows();
    return total;
}

std::uint64_t
benchmarkStreamSalt(const std::string &name)
{
    return fnv1a64(name);
}

namespace
{

/** Intervals a benchmark contributes (weight-proportional, >= 1). */
std::size_t
benchmarkIntervals(const BenchmarkProfile &bench,
                   const CollectionConfig &config)
{
    const auto intervals = static_cast<std::size_t>(std::llround(
        static_cast<double>(config.baseIntervals) *
        bench.instructionWeight));
    return std::max<std::size_t>(intervals, 1);
}

/** Stitch a benchmark's shard datasets back together in shard order. */
Dataset
concatenateShards(std::vector<Dataset> &parts)
{
    Dataset samples = std::move(parts.front());
    for (std::size_t s = 1; s < parts.size(); ++s)
        samples.append(parts[s]);
    return samples;
}

} // namespace

std::vector<ShardSpec>
shardPlan(const BenchmarkProfile &bench, const CollectionConfig &config)
{
    const std::size_t total = benchmarkIntervals(bench, config);
    const std::size_t shards =
        std::min(std::max<std::size_t>(config.shards, 1), total);
    std::vector<ShardSpec> plan(shards);
    const std::size_t base = total / shards;
    const std::size_t remainder = total % shards;
    std::size_t first = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        plan[s].firstInterval = first;
        plan[s].intervals = base + (s < remainder ? 1 : 0);
        first += plan[s].intervals;
    }
    return plan;
}

// The multiplexing rotation starts at the shard's first global
// interval so the schedule advances exactly as it would
// sequentially.
Dataset
collectShard(const BenchmarkProfile &bench,
             const CollectionConfig &config, std::size_t shard,
             const ShardSpec &spec)
{
    CoreModel core(config.machine);
    CollectorConfig pmu_config;
    pmu_config.intervalInstructions = config.intervalInstructions;
    pmu_config.multiplexed = config.multiplexed;
    pmu_config.initialRotation = spec.firstInterval;
    IntervalCollector collector(core, pmu_config);

    // Deterministic per-(benchmark, shard) stream seed, derived from
    // the stable benchmark name — never from suite position or
    // submission order.
    const std::uint64_t stream_seed =
        Rng(config.seed).fork(benchmarkStreamSalt(bench.name))();
    const std::uint64_t shard_seed =
        shard == 0 ? stream_seed : Rng(stream_seed).fork(shard)();
    WorkloadSource source(bench, shard_seed);

    // Warm caches, TLBs, and the predictor before sampling, as
    // hardware collection effectively does (the first intervals of a
    // long run are a vanishing fraction of the total).
    core.run(source, config.warmupInstructions);

    return collector.collect(source, spec.intervals);
}

BenchmarkData
collectBenchmark(const BenchmarkProfile &bench,
                 const CollectionConfig &config)
{
    BenchmarkData out;
    out.name = bench.name;
    out.instructionWeight = bench.instructionWeight;

    const std::vector<ShardSpec> plan = shardPlan(bench, config);
    std::vector<Dataset> parts(plan.size());
    parallelFor(plan.size(), [&](std::size_t s) {
        parts[s] = collectShard(bench, config, s, plan[s]);
    });
    out.samples = concatenateShards(parts);
    return out;
}

SuiteData
collectSuite(const SuiteProfile &suite, const CollectionConfig &config)
{
    SuiteData out;
    out.suiteName = suite.name;
    const std::size_t n = suite.benchmarks.size();
    out.benchmarks.resize(n);

    // Flatten every (benchmark, shard) pair into one task list so
    // the pool load-balances across benchmarks of very different
    // weights. Each task writes its own pre-assigned slot; the
    // stitch below runs in a fixed order, so the suite is
    // byte-identical for any thread count.
    struct Task
    {
        std::size_t bench = 0;
        std::size_t shard = 0;
        ShardSpec spec;
    };
    std::vector<Task> tasks;
    std::vector<std::vector<Dataset>> shard_data(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::vector<ShardSpec> plan =
            shardPlan(suite.benchmarks[i], config);
        shard_data[i].resize(plan.size());
        for (std::size_t s = 0; s < plan.size(); ++s)
            tasks.push_back(Task{i, s, plan[s]});
    }

    parallelFor(tasks.size(), [&](std::size_t t) {
        const Task &task = tasks[t];
        shard_data[task.bench][task.shard] = collectShard(
            suite.benchmarks[task.bench], config, task.shard,
            task.spec);
    });

    for (std::size_t i = 0; i < n; ++i) {
        BenchmarkData &bench = out.benchmarks[i];
        bench.name = suite.benchmarks[i].name;
        bench.instructionWeight = suite.benchmarks[i].instructionWeight;
        bench.samples = concatenateShards(shard_data[i]);
    }
    return out;
}

} // namespace wct
