/**
 * @file
 * Text serialization of trained model trees, so a model built from
 * one collection run can be stored, versioned, and applied to new
 * data later (or shipped to another machine) without retraining.
 *
 * The format is line-oriented and human-inspectable:
 *
 *   wct-model-tree v1
 *   target CPI
 *   schema <n> <name>...
 *   range <min> <max> <globalSd> <clamp>
 *   node split <attr> <value>        # children follow: left, right
 *   node leaf <count> <mean> <intercept> <k> (<attr> <coef>)...
 *   end
 */

#ifndef WCT_MTREE_SERIALIZE_HH
#define WCT_MTREE_SERIALIZE_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "mtree/model_tree.hh"

namespace wct
{

/**
 * First line of the format, doubling as its version marker (bump the
 * trailing number on incompatible changes). `wct version` reports it.
 */
constexpr char kModelTreeMagicLine[] = "wct-model-tree v1";

/**
 * Cap on the file size tryReadModelTreeFile will slurp. A real tree
 * is a few KB of text; anything near this bound is not a model file,
 * and rejecting it up front keeps a mislabelled giant file from being
 * read into memory just to fail the parse.
 */
constexpr std::uint64_t kMaxModelTreeFileBytes = 1ull << 28; // 256 MiB

/**
 * Content key of a serialized tree: the FNV-1a hash of the exact text
 * bytes. This is the identity serving and the artifact store use for
 * models — two trees share a key iff they serialize identically, i.e.
 * they compute the same function. (keyHex of data/artifact_store.hh
 * renders it; modelTreeContentHex composes the two.)
 */
std::uint64_t modelTreeContentKey(std::string_view text);

/** 16-hex-digit rendering of modelTreeContentKey. */
std::string modelTreeContentHex(std::string_view text);

/** Write a trained tree. */
void writeModelTree(const ModelTree &tree, std::ostream &out);

/** Write a trained tree to a file; fatal on I/O failure. */
void writeModelTreeFile(const ModelTree &tree,
                        const std::string &path);

/**
 * Read a tree previously written by writeModelTree. Malformed input
 * is a fatal error (user input).
 */
ModelTree readModelTree(std::istream &in);

/** Read a tree from a file; fatal on I/O failure. */
ModelTree readModelTreeFile(const std::string &path);

/**
 * Non-fatal readers for long-running callers (the serving model
 * registry must reject a corrupt upload without dying): nullopt on
 * malformed input, with a one-line reason in `err` when non-null.
 * The fatal readers above delegate to these.
 */
std::optional<ModelTree> tryReadModelTree(std::istream &in,
                                          std::string *err = nullptr);

/** File variant of tryReadModelTree (also catches open failures). */
std::optional<ModelTree>
tryReadModelTreeFile(const std::string &path,
                     std::string *err = nullptr);

} // namespace wct

#endif // WCT_MTREE_SERIALIZE_HH
