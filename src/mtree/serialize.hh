/**
 * @file
 * Text serialization of trained model trees, so a model built from
 * one collection run can be stored, versioned, and applied to new
 * data later (or shipped to another machine) without retraining.
 *
 * The format is line-oriented and human-inspectable:
 *
 *   wct-model-tree v1
 *   target CPI
 *   schema <n> <name>...
 *   range <min> <max> <globalSd> <clamp>
 *   node split <attr> <value>        # children follow: left, right
 *   node leaf <count> <mean> <intercept> <k> (<attr> <coef>)...
 *   end
 */

#ifndef WCT_MTREE_SERIALIZE_HH
#define WCT_MTREE_SERIALIZE_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "mtree/model_tree.hh"

namespace wct
{

/**
 * First line of the format, doubling as its version marker (bump the
 * trailing number on incompatible changes). `wct version` reports it.
 */
constexpr char kModelTreeMagicLine[] = "wct-model-tree v1";

/** Write a trained tree. */
void writeModelTree(const ModelTree &tree, std::ostream &out);

/** Write a trained tree to a file; fatal on I/O failure. */
void writeModelTreeFile(const ModelTree &tree,
                        const std::string &path);

/**
 * Read a tree previously written by writeModelTree. Malformed input
 * is a fatal error (user input).
 */
ModelTree readModelTree(std::istream &in);

/** Read a tree from a file; fatal on I/O failure. */
ModelTree readModelTreeFile(const std::string &path);

/**
 * Non-fatal readers for long-running callers (the serving model
 * registry must reject a corrupt upload without dying): nullopt on
 * malformed input, with a one-line reason in `err` when non-null.
 * The fatal readers above delegate to these.
 */
std::optional<ModelTree> tryReadModelTree(std::istream &in,
                                          std::string *err = nullptr);

/** File variant of tryReadModelTree (also catches open failures). */
std::optional<ModelTree>
tryReadModelTreeFile(const std::string &path,
                     std::string *err = nullptr);

} // namespace wct

#endif // WCT_MTREE_SERIALIZE_HH
