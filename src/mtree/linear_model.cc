#include "mtree/linear_model.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/ols.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace wct
{

std::string
LinearModel::describe(const std::vector<std::string> &column_names,
                      const std::string &target_name) const
{
    std::string out = target_name + " = " + formatCompact(intercept);
    for (std::size_t i = 0; i < attributes.size(); ++i) {
        const double c = coefficients[i];
        out += c < 0.0 ? " - " : " + ";
        out += formatCompact(std::fabs(c));
        out += " * ";
        out += column_names[attributes[i]];
    }
    return out;
}

GramAccumulator::GramAccumulator(std::vector<std::size_t> attributes,
                                 std::size_t target)
    : attributes_(std::move(attributes)), target_(target)
{
    const std::size_t dim = attributes_.size() + 1;
    gram_.assign(dim * dim, 0.0);
    xy_.assign(dim, 0.0);
}

void
GramAccumulator::add(std::span<const double> row)
{
    const std::size_t dim = attributes_.size() + 1;
    const double y = row[target_];
    ++count_;
    yy_ += y * y;

    // Augmented predictor vector z = [1, x...]; accumulate lower
    // triangle of z z' and z y.
    gram_[0] += 1.0;
    xy_[0] += y;
    for (std::size_t i = 0; i < attributes_.size(); ++i) {
        const double xi = row[attributes_[i]];
        gram_[(i + 1) * dim] += xi;
        xy_[i + 1] += xi * y;
        for (std::size_t j = 0; j <= i; ++j)
            gram_[(i + 1) * dim + (j + 1)] +=
                xi * row[attributes_[j]];
    }
}

void
GramAccumulator::addRows(const Dataset &data,
                         std::span<const std::size_t> rows)
{
    for (std::size_t r : rows)
        add(data.row(r));
}

double
GramAccumulator::targetMean() const
{
    wct_assert(count_ > 0, "empty accumulator");
    return xy_[0] / static_cast<double>(count_);
}

double
GramAccumulator::targetStddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double mean = xy_[0] / n;
    const double ss = std::max(0.0, yy_ - n * mean * mean);
    return std::sqrt(ss / (n - 1.0));
}

LinearModel
GramAccumulator::fitSubset(std::span<const std::size_t> subset,
                           double &out_rss) const
{
    wct_assert(count_ > 0, "fit on empty accumulator");
    const std::size_t full_dim = attributes_.size() + 1;
    const std::size_t dim = subset.size() + 1;

    // Extract the sub-Gram for [intercept, subset...].
    auto full_index = [&](std::size_t k) {
        return k == 0 ? std::size_t(0) : subset[k - 1] + 1;
    };
    std::vector<double> a(dim * dim);
    std::vector<double> b(dim);
    for (std::size_t i = 0; i < dim; ++i) {
        b[i] = xy_[full_index(i)];
        for (std::size_t j = 0; j < dim; ++j) {
            // The accumulator stores the lower triangle only; read
            // symmetrically.
            const std::size_t fi = full_index(i);
            const std::size_t fj = full_index(j);
            a[i * dim + j] = fi >= fj
                ? gram_[fi * full_dim + fj]
                : gram_[fj * full_dim + fi];
        }
    }

    // Ridge scaled to the mean predictor energy, escalated on
    // factorization failure (collinear or constant columns).
    double diag_scale = 0.0;
    for (std::size_t i = 1; i < dim; ++i)
        diag_scale += a[i * dim + i];
    diag_scale =
        dim > 1 ? diag_scale / static_cast<double>(dim - 1) : 1.0;
    if (diag_scale <= 0.0)
        diag_scale = 1.0;

    std::vector<double> solution;
    double lambda = 1e-9;
    for (int attempt = 0;; ++attempt) {
        std::vector<double> aa = a;
        std::vector<double> bb = b;
        for (std::size_t i = 1; i < dim; ++i)
            aa[i * dim + i] += lambda * diag_scale;
        if (choleskySolveInPlace(aa, bb, dim)) {
            solution = std::move(bb);
            break;
        }
        if (attempt >= 12)
            wct_fatal("leaf model normal equations unsolvable");
        lambda *= 10.0;
    }

    LinearModel model;
    model.intercept = solution[0];
    model.attributes.reserve(subset.size());
    model.coefficients.reserve(subset.size());
    for (std::size_t k = 0; k < subset.size(); ++k) {
        model.attributes.push_back(attributes_[subset[k]]);
        model.coefficients.push_back(solution[k + 1]);
    }

    // RSS = y'y - 2 b.(X'y) + b.(X'X)b, all available from moments.
    double bxy = 0.0;
    double bxxb = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
        bxy += solution[i] * b[i];
        double row_dot = 0.0;
        for (std::size_t j = 0; j < dim; ++j)
            row_dot += a[i * dim + j] * solution[j];
        bxxb += solution[i] * row_dot;
    }
    out_rss = std::max(0.0, yy_ - 2.0 * bxy + bxxb);
    return model;
}

double
GramAccumulator::adjustedError(double rss, std::size_t num_attrs) const
{
    const double n = static_cast<double>(count_);
    const double v = static_cast<double>(num_attrs);
    const double rmse = std::sqrt(rss / n);
    if (n <= v + 1.0)
        return rmse * 10.0; // hopelessly under-determined
    // Quinlan's compensation factor, penalising parameter count.
    return rmse * (n + v + 1.0) / (n - v - 1.0);
}

LinearModel
GramAccumulator::fitSimplified(double &out_adjusted_error) const
{
    std::vector<std::size_t> active(attributes_.size());
    std::iota(active.begin(), active.end(), std::size_t(0));

    double rss = 0.0;
    LinearModel best = fitSubset(active, rss);
    double best_err = adjustedError(rss, active.size());

    // Under-determined nodes first shed attributes unconditionally:
    // with n close to v + 1 the fit interpolates, its RSS-based error
    // is meaningless, and the coefficients extrapolate wildly. Keep
    // at least ~3 observations per fitted parameter.
    while (active.size() > 1 &&
           static_cast<double>(count_) <
               3.0 * (static_cast<double>(active.size()) + 1.0)) {
        double round_best_err =
            std::numeric_limits<double>::infinity();
        std::size_t drop_pos = 0;
        LinearModel round_model;
        for (std::size_t k = 0; k < active.size(); ++k) {
            std::vector<std::size_t> candidate = active;
            candidate.erase(candidate.begin() +
                            static_cast<std::ptrdiff_t>(k));
            double cand_rss = 0.0;
            LinearModel cand = fitSubset(candidate, cand_rss);
            const double err =
                adjustedError(cand_rss, candidate.size());
            if (err < round_best_err) {
                round_best_err = err;
                drop_pos = k;
                round_model = std::move(cand);
            }
        }
        active.erase(active.begin() +
                     static_cast<std::ptrdiff_t>(drop_pos));
        best = std::move(round_model);
        best_err = round_best_err;
    }

    // Greedy backward elimination: drop whichever attribute lowers
    // (or keeps) the compensated error the most, until no drop helps.
    while (!active.empty()) {
        double round_best_err = best_err;
        std::size_t drop_pos = active.size();
        LinearModel round_model;
        for (std::size_t k = 0; k < active.size(); ++k) {
            std::vector<std::size_t> candidate = active;
            candidate.erase(candidate.begin() +
                            static_cast<std::ptrdiff_t>(k));
            double cand_rss = 0.0;
            LinearModel cand = fitSubset(candidate, cand_rss);
            const double err =
                adjustedError(cand_rss, candidate.size());
            if (err <= round_best_err) {
                round_best_err = err;
                drop_pos = k;
                round_model = std::move(cand);
            }
        }
        if (drop_pos == active.size())
            break; // no drop helps
        active.erase(active.begin() +
                     static_cast<std::ptrdiff_t>(drop_pos));
        best = std::move(round_model);
        best_err = round_best_err;
    }

    out_adjusted_error = best_err;
    return best;
}

} // namespace wct
