/**
 * @file
 * Sparse linear models over dataset columns, and the Gram-matrix
 * machinery used to fit and simplify them.
 *
 * Every leaf of an M5' tree carries one of these models. Following
 * Quinlan's M5, a model is first fitted on all candidate attributes
 * and then simplified by greedy backward elimination under the
 * (n + v)/(n - v) error-compensation factor, which is what produces
 * the compact published equations (some leaves keep one attribute,
 * some collapse to a constant).
 */

#ifndef WCT_MTREE_LINEAR_MODEL_HH
#define WCT_MTREE_LINEAR_MODEL_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hh"

namespace wct
{

/** y = intercept + sum coefficients[i] * row[attributes[i]]. */
struct LinearModel
{
    double intercept = 0.0;
    std::vector<std::size_t> attributes; ///< dataset column indices
    std::vector<double> coefficients;    ///< parallel to attributes

    /**
     * Evaluate on a full dataset row. The row must cover every
     * attribute index; the sanitizer CI preset (-DWCT_SANITIZE=ON)
     * catches violations in the otherwise unchecked hot loop.
     */
    double
    predict(std::span<const double> row) const
    {
        double y = intercept;
        for (std::size_t i = 0; i < attributes.size(); ++i)
            y += coefficients[i] * row[attributes[i]];
        return y;
    }

    /** Number of attributes used. */
    std::size_t numAttributes() const { return attributes.size(); }

    /** Render as "CPI = 0.53 + 4.73 * L1DMiss + ..." */
    std::string describe(const std::vector<std::string> &column_names,
                         const std::string &target_name) const;
};

/**
 * Accumulated second moments of a sample subset: enough to fit any
 * attribute-subset OLS model and compute its residual sum of squares
 * without revisiting the rows.
 *
 * Degenerate-input contract (pinned by the property suite): fitting
 * with zero accumulated rows panics ("fit on empty accumulator");
 * non-finite observations poison the moments, make the Cholesky
 * factorization fail at every ridge escalation, and end in a fatal
 * "normal equations unsolvable" error rather than silent garbage.
 */
class GramAccumulator
{
  public:
    /**
     * @param attributes Candidate predictor columns.
     * @param target     Target column index.
     */
    GramAccumulator(std::vector<std::size_t> attributes,
                    std::size_t target);

    /** Fold one dataset row into the moments. */
    void add(std::span<const double> row);

    /** Fold a set of rows of a dataset. */
    void addRows(const Dataset &data,
                 std::span<const std::size_t> rows);

    std::size_t count() const { return count_; }
    double targetMean() const;

    /** Unbiased standard deviation of the target. */
    double targetStddev() const;

    /**
     * Fit a model on a subset of the candidate attributes (indices
     * into the candidate list), with ridge stabilisation.
     *
     * @param subset     Positions within the candidate attribute list.
     * @param out_rss    Residual sum of squares of the fit.
     * @return The fitted model with dataset column indices.
     */
    LinearModel fitSubset(std::span<const std::size_t> subset,
                          double &out_rss) const;

    /**
     * Fit on all candidates, then greedily drop attributes while the
     * compensated error sqrt(RSS/n) * (n + v + 1)/(n - v - 1) does
     * not increase.
     *
     * @param out_adjusted_error The final compensated error.
     */
    LinearModel fitSimplified(double &out_adjusted_error) const;

    /** Compensated error for a given RSS and attribute count. */
    double adjustedError(double rss, std::size_t num_attrs) const;

    /** The candidate attribute columns. */
    const std::vector<std::size_t> &attributes() const
    {
        return attributes_;
    }

  private:
    std::vector<std::size_t> attributes_;
    std::size_t target_;
    std::size_t count_ = 0;

    // Augmented moments over [1, x_0 .. x_{p-1}]: gram_ is the
    // (p+1)x(p+1) matrix of cross products, xy_ the cross products
    // with y, yy_ the target second moment.
    std::vector<double> gram_;
    std::vector<double> xy_;
    double yy_ = 0.0;
};

} // namespace wct

#endif // WCT_MTREE_LINEAR_MODEL_HH
