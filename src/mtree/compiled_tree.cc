#include "mtree/compiled_tree.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mtree/model_tree.hh"
#include "util/logging.hh"

namespace wct
{

CompiledTree
CompiledTree::compile(const ModelTree &tree)
{
    wct_assert(tree.root_ != nullptr, "compiling an untrained tree");

    CompiledTree out;
    out.columns_ = static_cast<std::uint32_t>(tree.schema_.size());
    out.clamp_ = tree.config_.clampPredictions;
    // Same arithmetic ModelTree::predict performs per call (margin =
    // one global sd), hoisted to compile time: one subtraction and
    // one addition, so the bounds are bit-identical.
    out.clampLo_ = tree.targetMin_ - tree.globalSd_;
    out.clampHi_ = tree.targetMax_ + tree.globalSd_;

    // Breadth-first flattening. BFS keeps each level's nodes in one
    // contiguous index range, which is what the level-synchronous
    // batch sweep walks; an explicit queue handles the parser's
    // worst-case 512-deep chains without recursion.
    struct Item
    {
        const ModelTree::Node *node;
        std::uint32_t level;
    };
    std::vector<Item> queue = {{tree.root_.get(), 0}};
    // Indices are assigned in queue order, so a node's children land
    // at the then-current tail: reserve ids as we enqueue.
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const Item item = queue[head];
        const ModelTree::Node *node = item.node;
        const std::uint32_t self =
            static_cast<std::uint32_t>(head);
        if (node->isLeaf) {
            out.attrs_.push_back(0);
            out.thresholds_.push_back(
                std::numeric_limits<double>::infinity());
            out.left_.push_back(self);
            out.right_.push_back(self);
            out.leafOf_.push_back(
                static_cast<std::uint32_t>(node->leafIndex));
        } else {
            const std::uint32_t next =
                static_cast<std::uint32_t>(queue.size());
            out.attrs_.push_back(
                static_cast<std::uint32_t>(node->splitAttr));
            out.thresholds_.push_back(node->splitValue);
            out.left_.push_back(next);
            out.right_.push_back(next + 1);
            out.leafOf_.push_back(kInterior);
            queue.push_back({node->left.get(), item.level + 1});
            queue.push_back({node->right.get(), item.level + 1});
            out.depth_ = std::max(out.depth_, item.level + 1);
        }
        wct_assert(queue.size() <
                       std::numeric_limits<std::uint32_t>::max(),
                   "tree too large to flatten with 32-bit indices");
    }

    // Leaf models in leaf-numbering order. leafNodes_ is the
    // in-order (left-to-right) list collectLeaves built, which is
    // exactly the order leafIndex values were assigned in.
    out.leafIntercepts_.reserve(tree.leafNodes_.size());
    out.termOffsets_.reserve(tree.leafNodes_.size() + 1);
    out.termOffsets_.push_back(0);
    for (const ModelTree::Node *leaf : tree.leafNodes_) {
        out.leafIntercepts_.push_back(leaf->model.intercept);
        for (std::size_t i = 0; i < leaf->model.attributes.size();
             ++i) {
            out.termAttrs_.push_back(static_cast<std::uint32_t>(
                leaf->model.attributes[i]));
            out.termCoefs_.push_back(leaf->model.coefficients[i]);
        }
        out.termOffsets_.push_back(
            static_cast<std::uint32_t>(out.termAttrs_.size()));
    }
    return out;
}

double
CompiledTree::leafValue(std::uint32_t leaf, const double *row) const
{
    // Exact replica of LinearModel::predict's accumulation: the same
    // terms, in the same stored order, folded left to right — then
    // the same std::clamp ModelTree::predict applies. Any change to
    // the operation order here breaks the bit-exactness contract.
    double y = leafIntercepts_[leaf];
    const std::uint32_t begin = termOffsets_[leaf];
    const std::uint32_t end = termOffsets_[leaf + 1];
    for (std::uint32_t k = begin; k < end; ++k)
        y += termCoefs_[k] * row[termAttrs_[k]];
    if (!clamp_)
        return y;
    return std::clamp(y, clampLo_, clampHi_);
}

double
CompiledTree::predict(std::span<const double> row) const
{
    wct_assert(row.size() == columns_, "row arity ", row.size(),
               " != compiled schema ", columns_);
    std::uint32_t idx = 0;
    while (leafOf_[idx] == kInterior)
        idx = row[attrs_[idx]] <= thresholds_[idx] ? left_[idx]
                                                   : right_[idx];
    return leafValue(leafOf_[idx], row.data());
}

std::size_t
CompiledTree::classify(std::span<const double> row) const
{
    wct_assert(row.size() == columns_, "row arity ", row.size(),
               " != compiled schema ", columns_);
    std::uint32_t idx = 0;
    while (leafOf_[idx] == kInterior)
        idx = row[attrs_[idx]] <= thresholds_[idx] ? left_[idx]
                                                   : right_[idx];
    return leafOf_[idx];
}

void
CompiledTree::evaluateBlock(const double *rows, std::size_t stride,
                            std::size_t n, double *cpi,
                            std::uint32_t *leaf) const
{
    wct_assert(cpi != nullptr || leaf != nullptr,
               "evaluateBlock with no outputs requested");
    wct_assert(stride >= columns_, "row stride ", stride,
               " narrower than schema ", columns_);

    std::uint32_t idx[kBlockRows];
    for (std::size_t base = 0; base < n; base += kBlockRows) {
        const std::size_t m = std::min(kBlockRows, n - base);
        const double *tile = rows + base * stride;

        // Level-synchronous branch-free descent: every row advances
        // one level per inner iteration via a select (leaves
        // self-loop, so finished rows are no-ops). The loop body has
        // no data-dependent control flow — the compare feeds a
        // conditional move, not a branch — and rows are independent,
        // so the compiler can unroll/vectorize across i.
        std::fill_n(idx, m, 0u);
        for (std::uint32_t level = 0; level < depth_; ++level) {
            for (std::size_t i = 0; i < m; ++i) {
                const std::uint32_t node = idx[i];
                const double v = tile[i * stride + attrs_[node]];
                idx[i] = v <= thresholds_[node] ? left_[node]
                                                : right_[node];
            }
        }

        if (leaf != nullptr)
            for (std::size_t i = 0; i < m; ++i)
                leaf[base + i] = leafOf_[idx[i]];
        if (cpi != nullptr)
            for (std::size_t i = 0; i < m; ++i)
                cpi[base + i] =
                    leafValue(leafOf_[idx[i]], tile + i * stride);
    }
}

} // namespace wct
