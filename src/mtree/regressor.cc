#include "mtree/regressor.hh"

#include "util/logging.hh"

namespace wct
{

void
Regressor::checkSchema(const Dataset &data) const
{
    if (data.columnNames() != schema())
        wct_fatal("dataset schema does not match the schema the "
                  "model was trained on");
}

std::vector<double>
Regressor::predictAll(const Dataset &data) const
{
    checkSchema(data);
    std::vector<double> out;
    out.reserve(data.numRows());
    for (std::size_t r = 0; r < data.numRows(); ++r)
        out.push_back(predict(data.row(r)));
    return out;
}

} // namespace wct
