#include "mtree/regressor.hh"

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace wct
{

void
Regressor::checkSchema(const Dataset &data) const
{
    if (data.columnNames() != schema())
        wct_fatal("dataset schema does not match the schema the "
                  "model was trained on");
}

std::vector<double>
Regressor::predictAll(const Dataset &data) const
{
    checkSchema(data);
    // Predictions are independent per row and written to pre-sized
    // slots, so chunked parallel evaluation returns the same vector
    // as the sequential loop.
    std::vector<double> out(data.numRows());
    parallelFor(
        data.numRows(),
        [&](std::size_t r) { out[r] = predict(data.row(r)); },
        ThreadPool::global(), /*min_chunk=*/256);
    return out;
}

} // namespace wct
