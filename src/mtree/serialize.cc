#include "mtree/serialize.hh"

#include <fstream>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace wct
{

namespace
{

constexpr const char *kMagic = "wct-model-tree v1";

} // namespace

void
ModelTree::save(std::ostream &out) const
{
    wct_assert(root_ != nullptr, "saving an untrained tree");
    out.precision(17);
    out << kMagic << "\n";
    out << "target " << target_ << "\n";
    out << "schema " << schema_.size();
    for (const std::string &name : schema_)
        out << " " << name;
    out << "\n";
    out << "range " << targetMin_ << " " << targetMax_ << " "
        << globalSd_ << " " << (config_.clampPredictions ? 1 : 0)
        << "\n";

    // Pre-order node dump.
    std::vector<const Node *> stack = {root_.get()};
    while (!stack.empty()) {
        const Node *node = stack.back();
        stack.pop_back();
        if (!node->isLeaf) {
            out << "node split " << node->splitAttr << " "
                << node->splitValue << " " << node->count << " "
                << node->meanTarget << "\n";
            // Left child first in pre-order.
            stack.push_back(node->right.get());
            stack.push_back(node->left.get());
            continue;
        }
        out << "node leaf " << node->count << " " << node->meanTarget
            << " " << node->model.intercept << " "
            << node->model.attributes.size();
        for (std::size_t i = 0; i < node->model.attributes.size();
             ++i) {
            out << " " << node->model.attributes[i] << " "
                << node->model.coefficients[i];
        }
        out << "\n";
    }
    out << "end\n";
}

ModelTree
ModelTree::load(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line) || line != kMagic)
        wct_fatal("not a wct model tree (bad magic line)");

    ModelTree tree;
    std::string keyword;

    if (!(in >> keyword) || keyword != "target" || !(in >> tree.target_))
        wct_fatal("model tree: missing target line");

    std::size_t schema_size = 0;
    if (!(in >> keyword) || keyword != "schema" || !(in >> schema_size))
        wct_fatal("model tree: missing schema line");
    tree.schema_.resize(schema_size);
    for (std::string &name : tree.schema_)
        if (!(in >> name))
            wct_fatal("model tree: truncated schema");
    bool found_target = false;
    for (std::size_t c = 0; c < tree.schema_.size(); ++c) {
        if (tree.schema_[c] == tree.target_) {
            tree.targetColumn_ = c;
            found_target = true;
        }
    }
    if (!found_target)
        wct_fatal("model tree: target '", tree.target_,
                  "' not in schema");

    int clamp = 1;
    if (!(in >> keyword) || keyword != "range" ||
        !(in >> tree.targetMin_ >> tree.targetMax_ >> tree.globalSd_ >>
          clamp)) {
        wct_fatal("model tree: missing range line");
    }
    tree.config_.clampPredictions = clamp != 0;

    // Recursive pre-order reader (needs Node, so it lives here).
    const std::size_t num_columns = tree.schema_.size();
    const std::function<std::unique_ptr<Node>()> read_node =
        [&]() -> std::unique_ptr<Node> {
        std::string node_keyword;
        std::string kind;
        if (!(in >> node_keyword >> kind) || node_keyword != "node")
            wct_fatal("model tree: expected a node record");

        auto node = std::make_unique<Node>();
        if (kind == "split") {
            node->isLeaf = false;
            if (!(in >> node->splitAttr >> node->splitValue >>
                  node->count >> node->meanTarget)) {
                wct_fatal("model tree: malformed split node");
            }
            if (node->splitAttr >= num_columns)
                wct_fatal("model tree: split attribute ",
                          node->splitAttr, " outside schema");
            node->left = read_node();
            node->right = read_node();
            return node;
        }
        if (kind != "leaf")
            wct_fatal("model tree: unknown node kind '", kind, "'");

        std::size_t terms = 0;
        if (!(in >> node->count >> node->meanTarget >>
              node->model.intercept >> terms)) {
            wct_fatal("model tree: malformed leaf node");
        }
        node->model.attributes.resize(terms);
        node->model.coefficients.resize(terms);
        for (std::size_t i = 0; i < terms; ++i) {
            if (!(in >> node->model.attributes[i] >>
                  node->model.coefficients[i])) {
                wct_fatal("model tree: truncated leaf model");
            }
            if (node->model.attributes[i] >= num_columns)
                wct_fatal("model tree: leaf attribute outside "
                          "schema");
        }
        return node;
    };
    tree.root_ = read_node();

    if (!(in >> keyword) || keyword != "end")
        wct_fatal("model tree: missing end marker");

    tree.collectLeaves(tree.root_.get());
    return tree;
}

void
writeModelTree(const ModelTree &tree, std::ostream &out)
{
    tree.save(out);
}

void
writeModelTreeFile(const ModelTree &tree, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        wct_fatal("cannot open '", path, "' for writing");
    tree.save(out);
    out.flush();
    if (!out)
        wct_fatal("write error on '", path, "'");
}

ModelTree
readModelTree(std::istream &in)
{
    return ModelTree::load(in);
}

ModelTree
readModelTreeFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        wct_fatal("cannot open '", path, "' for reading");
    return ModelTree::load(in);
}

} // namespace wct
