#include "mtree/serialize.hh"

#include <filesystem>
#include <fstream>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>

#include "data/artifact_store.hh"
#include "util/logging.hh"

namespace wct
{

namespace
{

/**
 * Nesting bound for the recursive reader. Real trees are capped by
 * ModelTreeConfig::maxDepth (default 32); the parse bound only has to
 * keep a hostile file from overflowing the stack.
 */
constexpr std::size_t kMaxParseDepth = 512;

/** Set *err (when non-null) and return false; the parse fail path. */
bool
parseFail(std::string *err, std::string message)
{
    if (err != nullptr)
        *err = std::move(message);
    return false;
}

} // namespace

void
ModelTree::save(std::ostream &out) const
{
    wct_assert(root_ != nullptr, "saving an untrained tree");
    out.precision(17);
    out << kModelTreeMagicLine << "\n";
    out << "target " << target_ << "\n";
    out << "schema " << schema_.size();
    for (const std::string &name : schema_)
        out << " " << name;
    out << "\n";
    out << "range " << targetMin_ << " " << targetMax_ << " "
        << globalSd_ << " " << (config_.clampPredictions ? 1 : 0)
        << "\n";

    // Pre-order node dump.
    std::vector<const Node *> stack = {root_.get()};
    while (!stack.empty()) {
        const Node *node = stack.back();
        stack.pop_back();
        if (!node->isLeaf) {
            out << "node split " << node->splitAttr << " "
                << node->splitValue << " " << node->count << " "
                << node->meanTarget << "\n";
            // Left child first in pre-order.
            stack.push_back(node->right.get());
            stack.push_back(node->left.get());
            continue;
        }
        out << "node leaf " << node->count << " " << node->meanTarget
            << " " << node->model.intercept << " "
            << node->model.attributes.size();
        for (std::size_t i = 0; i < node->model.attributes.size();
             ++i) {
            out << " " << node->model.attributes[i] << " "
                << node->model.coefficients[i];
        }
        out << "\n";
    }
    out << "end\n";
}

std::optional<ModelTree>
ModelTree::tryLoad(std::istream &in, std::string *err)
{
    std::string line;
    if (!std::getline(in, line) || line != kModelTreeMagicLine) {
        parseFail(err, "not a wct model tree (bad magic line)");
        return std::nullopt;
    }

    ModelTree tree;
    std::string keyword;

    if (!(in >> keyword) || keyword != "target" ||
        !(in >> tree.target_)) {
        parseFail(err, "model tree: missing target line");
        return std::nullopt;
    }

    std::size_t schema_size = 0;
    if (!(in >> keyword) || keyword != "schema" ||
        !(in >> schema_size)) {
        parseFail(err, "model tree: missing schema line");
        return std::nullopt;
    }
    // A hostile size must not turn into a huge allocation: each name
    // needs at least two input bytes ("x "), so cap by a generous
    // constant instead of trusting the count.
    if (schema_size == 0 || schema_size > (1u << 20)) {
        parseFail(err, "model tree: implausible schema size");
        return std::nullopt;
    }
    tree.schema_.resize(schema_size);
    for (std::string &name : tree.schema_)
        if (!(in >> name)) {
            parseFail(err, "model tree: truncated schema");
            return std::nullopt;
        }
    bool found_target = false;
    for (std::size_t c = 0; c < tree.schema_.size(); ++c) {
        if (tree.schema_[c] == tree.target_) {
            tree.targetColumn_ = c;
            found_target = true;
        }
    }
    if (!found_target) {
        parseFail(err, "model tree: target '" + tree.target_ +
                           "' not in schema");
        return std::nullopt;
    }

    int clamp = 1;
    if (!(in >> keyword) || keyword != "range" ||
        !(in >> tree.targetMin_ >> tree.targetMax_ >> tree.globalSd_ >>
          clamp)) {
        parseFail(err, "model tree: missing range line");
        return std::nullopt;
    }
    tree.config_.clampPredictions = clamp != 0;

    // Recursive pre-order reader (needs Node, so it lives here). A
    // null return means a malformed record; the reason is in *err.
    const std::size_t num_columns = tree.schema_.size();
    const std::function<std::unique_ptr<Node>(std::size_t)> read_node =
        [&](std::size_t depth) -> std::unique_ptr<Node> {
        if (depth > kMaxParseDepth) {
            parseFail(err, "model tree: nesting too deep");
            return nullptr;
        }
        std::string node_keyword;
        std::string kind;
        if (!(in >> node_keyword >> kind) || node_keyword != "node") {
            parseFail(err, "model tree: expected a node record");
            return nullptr;
        }

        auto node = std::make_unique<Node>();
        if (kind == "split") {
            node->isLeaf = false;
            if (!(in >> node->splitAttr >> node->splitValue >>
                  node->count >> node->meanTarget)) {
                parseFail(err, "model tree: malformed split node");
                return nullptr;
            }
            if (node->splitAttr >= num_columns) {
                parseFail(err,
                          "model tree: split attribute " +
                              std::to_string(node->splitAttr) +
                              " outside schema");
                return nullptr;
            }
            node->left = read_node(depth + 1);
            if (node->left == nullptr)
                return nullptr;
            node->right = read_node(depth + 1);
            if (node->right == nullptr)
                return nullptr;
            return node;
        }
        if (kind != "leaf") {
            parseFail(err, "model tree: unknown node kind '" + kind +
                               "'");
            return nullptr;
        }

        std::size_t terms = 0;
        if (!(in >> node->count >> node->meanTarget >>
              node->model.intercept >> terms)) {
            parseFail(err, "model tree: malformed leaf node");
            return nullptr;
        }
        if (terms > num_columns) {
            parseFail(err, "model tree: leaf has more terms than "
                           "schema columns");
            return nullptr;
        }
        node->model.attributes.resize(terms);
        node->model.coefficients.resize(terms);
        for (std::size_t i = 0; i < terms; ++i) {
            if (!(in >> node->model.attributes[i] >>
                  node->model.coefficients[i])) {
                parseFail(err, "model tree: truncated leaf model");
                return nullptr;
            }
            if (node->model.attributes[i] >= num_columns) {
                parseFail(err, "model tree: leaf attribute outside "
                               "schema");
                return nullptr;
            }
        }
        return node;
    };
    tree.root_ = read_node(0);
    if (tree.root_ == nullptr)
        return std::nullopt;

    if (!(in >> keyword) || keyword != "end") {
        parseFail(err, "model tree: missing end marker");
        return std::nullopt;
    }

    // finalize() also lowers the parsed tree into its compiled form,
    // so every load path — files, the serving registry's hot reload,
    // loadFromStore — rebuilds the flattened evaluator with the swap.
    tree.finalize();
    return tree;
}

ModelTree
ModelTree::load(std::istream &in)
{
    std::string err;
    auto tree = tryLoad(in, &err);
    if (!tree)
        wct_fatal(err);
    return std::move(*tree);
}

void
writeModelTree(const ModelTree &tree, std::ostream &out)
{
    tree.save(out);
}

void
writeModelTreeFile(const ModelTree &tree, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        wct_fatal("cannot open '", path, "' for writing");
    tree.save(out);
    out.flush();
    if (!out)
        wct_fatal("write error on '", path, "'");
}

ModelTree
readModelTree(std::istream &in)
{
    return ModelTree::load(in);
}

ModelTree
readModelTreeFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        wct_fatal("cannot open '", path, "' for reading");
    return ModelTree::load(in);
}

std::optional<ModelTree>
tryReadModelTree(std::istream &in, std::string *err)
{
    return ModelTree::tryLoad(in, err);
}

std::optional<ModelTree>
tryReadModelTreeFile(const std::string &path, std::string *err)
{
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path, ec);
    if (!ec && bytes > kMaxModelTreeFileBytes) {
        parseFail(err, "'" + path + "' is too large to be a model "
                       "tree file");
        return std::nullopt;
    }
    std::ifstream in(path);
    if (!in) {
        parseFail(err, "cannot open '" + path + "' for reading");
        return std::nullopt;
    }
    return ModelTree::tryLoad(in, err);
}

std::uint64_t
modelTreeContentKey(std::string_view text)
{
    return fnv1a64(text);
}

std::string
modelTreeContentHex(std::string_view text)
{
    return keyHex(modelTreeContentKey(text));
}

} // namespace wct
