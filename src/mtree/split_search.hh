/**
 * @file
 * SDR split search over one attribute — the innermost loop of M5'
 * tree induction, exposed as a standalone function so the
 * differential-oracle tests (tests/support/oracles.hh) can exercise
 * the optimized prefix-sum implementation against a naive O(n²)
 * reference on arbitrary inputs.
 *
 * Determinism contract (relied on by serialization goldens and the
 * property suite): given the same observations in the same order the
 * search is bit-reproducible, and ties in SDR are broken toward the
 * boundary with the lowest split value. Callers scanning several
 * attributes break cross-attribute ties toward the lowest attribute
 * index by iterating attributes in ascending order and replacing the
 * incumbent only on strict improvement.
 */

#ifndef WCT_MTREE_SPLIT_SEARCH_HH
#define WCT_MTREE_SPLIT_SEARCH_HH

#include <cstddef>
#include <vector>

namespace wct
{

/** One (attribute value, target) observation for split search. */
struct SplitObservation
{
    double value = 0.0;
    double target = 0.0;
};

/** Outcome of a single-attribute SDR split search. */
struct SplitCandidate
{
    /** False when no admissible boundary exists (constant attribute
     * or every boundary violates the minimum-leaf constraint). */
    bool valid = false;

    /** Split threshold: the midpoint between the two adjacent
     * distinct attribute values around the chosen boundary. Rows with
     * value <= threshold go left. */
    double value = 0.0;

    /**
     * Standard deviation reduction of the chosen boundary:
     *   SDR = sd(node) - nl/n * sd(left) - nr/n * sd(right)
     * where the side deviations are population standard deviations
     * (the M5 convention this codebase uses throughout).
     */
    double sdr = 0.0;

    /** Number of observations on the <= side of the boundary. */
    std::size_t leftCount = 0;
};

/**
 * Find the best SDR boundary of one attribute.
 *
 * Sorts `observations` by value in place (stable order for equal
 * values is irrelevant: only value boundaries matter), then scans
 * every boundary between distinct values with prefix sums of the
 * target and its square. Boundaries leaving fewer than `min_leaf`
 * observations on either side are skipped.
 *
 * @param observations Scratch buffer of observations; sorted in place.
 * @param node_sd      Standard deviation of the target over the node
 *                     (the caller's convention; it only shifts SDR by
 *                     a constant and never changes the argmax).
 * @param min_leaf     Minimum observations per side (>= 1).
 */
SplitCandidate findBestSdrSplit(std::vector<SplitObservation> &observations,
                                double node_sd, std::size_t min_leaf);

} // namespace wct

#endif // WCT_MTREE_SPLIT_SEARCH_HH
