/**
 * @file
 * SDR split search over one attribute — the innermost loop of M5'
 * tree induction, exposed as a standalone function so the
 * differential-oracle tests (tests/support/oracles.hh) can exercise
 * the optimized prefix-sum implementation against a naive O(n²)
 * reference on arbitrary inputs.
 *
 * Determinism contract (relied on by serialization goldens and the
 * property suite): given the same observations in the same order the
 * search is bit-reproducible, and ties in SDR are broken toward the
 * boundary with the lowest split value. Callers scanning several
 * attributes break cross-attribute ties toward the lowest attribute
 * index by iterating attributes in ascending order and replacing the
 * incumbent only on strict improvement.
 */

#ifndef WCT_MTREE_SPLIT_SEARCH_HH
#define WCT_MTREE_SPLIT_SEARCH_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wct
{

/** One (attribute value, target) observation for split search. */
struct SplitObservation
{
    double value = 0.0;
    double target = 0.0;
};

/** Outcome of a single-attribute SDR split search. */
struct SplitCandidate
{
    /** False when no admissible boundary exists (constant attribute
     * or every boundary violates the minimum-leaf constraint). */
    bool valid = false;

    /** Split threshold: the midpoint between the two adjacent
     * distinct attribute values around the chosen boundary. Rows with
     * value <= threshold go left. */
    double value = 0.0;

    /**
     * Standard deviation reduction of the chosen boundary:
     *   SDR = sd(node) - nl/n * sd(left) - nr/n * sd(right)
     * where the side deviations are population standard deviations
     * (the M5 convention this codebase uses throughout).
     */
    double sdr = 0.0;

    /** Number of observations on the <= side of the boundary. */
    std::size_t leftCount = 0;
};

/**
 * Find the best SDR boundary of one attribute.
 *
 * Stably sorts `observations` by value in place (equal values keep
 * the caller's insertion order, so the accumulation order — and with
 * it every rounded prefix sum — matches the presorted kernel below),
 * then scans every boundary between distinct values with prefix sums
 * of the target and its square. Boundaries leaving fewer than
 * `min_leaf` observations on either side are skipped.
 *
 * @param observations Scratch buffer of observations; sorted in place.
 * @param node_sd      Standard deviation of the target over the node
 *                     (the caller's convention; it only shifts SDR by
 *                     a constant and never changes the argmax).
 * @param min_leaf     Minimum observations per side (>= 1).
 */
SplitCandidate findBestSdrSplit(std::vector<SplitObservation> &observations,
                                double node_sd, std::size_t min_leaf);

/**
 * One attribute's working set for the presorted tree builder: the
 * node's attribute values sorted ascending (equal values in ascending
 * row order), the matching targets, and the matching row ids — three
 * parallel arrays, kept contiguous so the split sweep streams instead
 * of gathering. Built once at the root from a ColumnStore and stably
 * partitioned down the tree (stablePartitionPresorted), which keeps
 * the sort invariant at every node without re-sorting.
 */
struct PresortedColumn
{
    std::vector<double> values;
    std::vector<double> targets;
    std::vector<std::uint32_t> rows;
};

/**
 * Presorted variant of findBestSdrSplit — the O(n) per-node fast
 * path. `values` / `targets` are one node's slice of a
 * PresortedColumn: already sorted by value (stably: equal values in
 * ascending row order). No sorting happens here; the sweep is a
 * single linear pass over the two arrays.
 *
 * Bit-compatibility contract (pinned by the builder-equivalence
 * property test): on the same logical observations this returns
 * exactly the result of findBestSdrSplit, because both funnel into
 * one shared sweep and the orderings agree including ties.
 */
SplitCandidate findBestSdrSplitPresorted(std::span<const double> values,
                                         std::span<const double> targets,
                                         double node_sd,
                                         std::size_t min_leaf);

/**
 * Stable in-place partition of one PresortedColumn range [lo, hi):
 * entries whose row has `goes_left[row] != 0` move to the front, the
 * rest to the back, each side keeping its relative order — which is
 * what preserves the "sorted by attribute, ties by row index"
 * invariant of every attribute's working set across a tree split (the
 * CART / XGBoost presorted scheme). The left/right decision is a
 * per-row byte mask (computed once per node from the split attribute)
 * rather than a comparison against the split column, so partitioning
 * A attributes costs A streaming passes and one byte-gather per
 * element.
 *
 * @param column    The attribute working set; [lo, hi) is one node.
 * @param lo, hi    Node range within the arrays.
 * @param goes_left Byte per dataset row: non-zero = left child.
 * @param scratch   Reused temporaries for the right-hand side.
 * @return Number of entries on the left side.
 */
std::size_t stablePartitionPresorted(PresortedColumn &column,
                                     std::size_t lo, std::size_t hi,
                                     const unsigned char *goes_left,
                                     PresortedColumn &scratch);

} // namespace wct

#endif // WCT_MTREE_SPLIT_SEARCH_HH
