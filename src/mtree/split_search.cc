#include "mtree/split_search.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace wct
{

SplitCandidate
findBestSdrSplit(std::vector<SplitObservation> &observations,
                 double node_sd, std::size_t min_leaf)
{
    wct_assert(min_leaf >= 1, "min_leaf must be at least 1");

    SplitCandidate best;
    const std::size_t n = observations.size();
    if (n < 2)
        return best;

    std::sort(observations.begin(), observations.end(),
              [](const SplitObservation &a, const SplitObservation &b) {
                  return a.value < b.value;
              });
    if (observations.front().value == observations.back().value)
        return best; // constant attribute

    double total = 0.0;
    double total_sq = 0.0;
    for (const SplitObservation &obs : observations) {
        total += obs.target;
        total_sq += obs.target * obs.target;
    }

    // One pass over the boundaries with prefix sums; the side
    // variances come from E[y²] - E[y]² with a clamp against
    // cancellation. Replacement only on strict improvement keeps the
    // lowest-value boundary among SDR ties.
    double best_sdr = -1.0;
    double left_sum = 0.0;
    double left_sq = 0.0;
    const double fn = static_cast<double>(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        left_sum += observations[i].target;
        left_sq += observations[i].target * observations[i].target;
        if (observations[i].value == observations[i + 1].value)
            continue; // not a boundary
        const std::size_t nl = i + 1;
        const std::size_t nr = n - nl;
        if (nl < min_leaf || nr < min_leaf)
            continue;

        const double fl = static_cast<double>(nl);
        const double fr = static_cast<double>(nr);
        const double var_l = std::max(
            0.0, left_sq / fl - (left_sum / fl) * (left_sum / fl));
        const double right_sum = total - left_sum;
        const double right_sq = total_sq - left_sq;
        const double var_r = std::max(
            0.0,
            right_sq / fr - (right_sum / fr) * (right_sum / fr));
        const double sdr = node_sd - (fl / fn) * std::sqrt(var_l) -
            (fr / fn) * std::sqrt(var_r);
        if (sdr > best_sdr) {
            best_sdr = sdr;
            best.valid = true;
            best.sdr = sdr;
            best.leftCount = nl;
            best.value = 0.5 * (observations[i].value +
                                observations[i + 1].value);
        }
    }
    return best;
}

} // namespace wct
