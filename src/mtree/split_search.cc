#include "mtree/split_search.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace wct
{

namespace
{

/**
 * The boundary sweep shared by both kernels: observations are
 * presented through accessors in ascending-value order and scanned
 * once with prefix sums of the target and its square.
 *
 * Both public entry points funnel through this one template so they
 * evaluate the exact same floating-point expression sequence — given
 * the same observation order the two kernels are bit-identical, which
 * is what lets the presorted builder reproduce the reference
 * builder's trees exactly.
 */
template <typename ValueAt, typename TargetAt>
SplitCandidate
sweepBoundaries(std::size_t n, ValueAt value_at, TargetAt target_at,
                double node_sd, std::size_t min_leaf)
{
    wct_assert(min_leaf >= 1, "min_leaf must be at least 1");

    SplitCandidate best;
    if (n < 2)
        return best;
    if (value_at(0) == value_at(n - 1))
        return best; // constant attribute

    double total = 0.0;
    double total_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double y = target_at(i);
        total += y;
        total_sq += y * y;
    }

    // One pass over the boundaries with prefix sums; the side
    // variances come from E[y²] - E[y]² with a clamp against
    // cancellation. Replacement only on strict improvement keeps the
    // lowest-value boundary among SDR ties.
    double best_sdr = -1.0;
    double left_sum = 0.0;
    double left_sq = 0.0;
    const double fn = static_cast<double>(n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double y = target_at(i);
        left_sum += y;
        left_sq += y * y;
        if (value_at(i) == value_at(i + 1))
            continue; // not a boundary
        const std::size_t nl = i + 1;
        const std::size_t nr = n - nl;
        if (nl < min_leaf || nr < min_leaf)
            continue;

        const double fl = static_cast<double>(nl);
        const double fr = static_cast<double>(nr);
        const double var_l = std::max(
            0.0, left_sq / fl - (left_sum / fl) * (left_sum / fl));
        const double right_sum = total - left_sum;
        const double right_sq = total_sq - left_sq;
        const double var_r = std::max(
            0.0,
            right_sq / fr - (right_sum / fr) * (right_sum / fr));
        const double sdr = node_sd - (fl / fn) * std::sqrt(var_l) -
            (fr / fn) * std::sqrt(var_r);
        if (sdr > best_sdr) {
            best_sdr = sdr;
            best.valid = true;
            best.sdr = sdr;
            best.leftCount = nl;
            best.value = 0.5 * (value_at(i) + value_at(i + 1));
        }
    }
    return best;
}

} // namespace

SplitCandidate
findBestSdrSplit(std::vector<SplitObservation> &observations,
                 double node_sd, std::size_t min_leaf)
{
    // Stable sort pins the order of equal attribute values to the
    // caller's insertion order (= ascending row index in the tree
    // builder). Prefix sums round according to accumulation order, so
    // this is what makes the reference kernel agree bit-for-bit with
    // the presorted kernel, whose root-sorted index arrays are
    // stably partitioned down the tree.
    std::stable_sort(
        observations.begin(), observations.end(),
        [](const SplitObservation &a, const SplitObservation &b) {
            return a.value < b.value;
        });
    return sweepBoundaries(
        observations.size(),
        [&observations](std::size_t i) { return observations[i].value; },
        [&observations](std::size_t i) {
            return observations[i].target;
        },
        node_sd, min_leaf);
}

SplitCandidate
findBestSdrSplitPresorted(std::span<const double> values,
                          std::span<const double> targets,
                          double node_sd, std::size_t min_leaf)
{
    wct_assert(values.size() == targets.size(),
               "presorted arrays disagree: ", values.size(), " vs ",
               targets.size());
    return sweepBoundaries(
        values.size(),
        [values](std::size_t i) { return values[i]; },
        [targets](std::size_t i) { return targets[i]; },
        node_sd, min_leaf);
}

std::size_t
stablePartitionPresorted(PresortedColumn &column, std::size_t lo,
                         std::size_t hi, const unsigned char *goes_left,
                         PresortedColumn &scratch)
{
    scratch.values.clear();
    scratch.targets.clear();
    scratch.rows.clear();
    // Capacity for the worst case up front: the push_backs below can
    // then never reallocate (first use of a fresh scratch would
    // otherwise pay a geometric growth chain per attribute).
    scratch.values.reserve(hi - lo);
    scratch.targets.reserve(hi - lo);
    scratch.rows.reserve(hi - lo);
    // Forward pass: left entries compact toward lo in place, right
    // entries buffer in scratch and are copied back behind them —
    // both sides keep their relative (sorted, ties-by-row) order.
    std::size_t out = lo;
    for (std::size_t i = lo; i < hi; ++i) {
        const std::uint32_t row = column.rows[i];
        if (goes_left[row]) {
            column.values[out] = column.values[i];
            column.targets[out] = column.targets[i];
            column.rows[out] = row;
            ++out;
        } else {
            scratch.values.push_back(column.values[i]);
            scratch.targets.push_back(column.targets[i]);
            scratch.rows.push_back(row);
        }
    }
    std::copy(scratch.values.begin(), scratch.values.end(),
              column.values.begin() + static_cast<std::ptrdiff_t>(out));
    std::copy(scratch.targets.begin(), scratch.targets.end(),
              column.targets.begin() +
                  static_cast<std::ptrdiff_t>(out));
    std::copy(scratch.rows.begin(), scratch.rows.end(),
              column.rows.begin() + static_cast<std::ptrdiff_t>(out));
    return out - lo;
}

} // namespace wct
