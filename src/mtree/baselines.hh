/**
 * @file
 * Baseline regressors the model tree is compared against: a single
 * global linear regression (what most prior characterization work
 * used) and a CART-style regression tree with constant leaves.
 */

#ifndef WCT_MTREE_BASELINES_HH
#define WCT_MTREE_BASELINES_HH

#include "mtree/linear_model.hh"
#include "mtree/model_tree.hh"
#include "mtree/regressor.hh"

namespace wct
{

/** One global OLS model over all predictors (optionally simplified). */
class GlobalLinearRegression : public Regressor
{
  public:
    /** Train on a dataset; predictors are all non-target columns. */
    static GlobalLinearRegression train(const Dataset &data,
                                        const std::string &target,
                                        bool simplify = true);

    double
    predict(std::span<const double> row) const override
    {
        return model_.predict(row);
    }

    const std::string &targetName() const override { return target_; }

    const std::vector<std::string> &schema() const override
    {
        return schema_;
    }

    /** The fitted linear model. */
    const LinearModel &model() const { return model_; }

  private:
    LinearModel model_;
    std::string target_;
    std::vector<std::string> schema_;
};

/**
 * CART-style regression tree: the M5' machinery with constant leaves
 * and no smoothing, exposing how much of the accuracy comes from the
 * leaf linear models.
 */
ModelTree trainRegressionTree(const Dataset &data,
                              const std::string &target,
                              ModelTreeConfig config = {});

} // namespace wct

#endif // WCT_MTREE_BASELINES_HH
