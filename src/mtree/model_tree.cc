#include "mtree/model_tree.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mtree/split_search.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace wct
{

/**
 * Training-time helper holding the dataset and hyper-parameters so
 * the recursive routines do not thread a dozen arguments.
 */
class ModelTree::Builder
{
  public:
    Builder(const Dataset &data, std::size_t target,
            const ModelTreeConfig &config)
        : data_(data), target_(target), config_(config)
    {
        for (std::size_t c = 0; c < data.numColumns(); ++c)
            if (c != target)
                predictors_.push_back(c);

        minLeaf_ = std::max<std::size_t>(
            config.minLeafInstances,
            static_cast<std::size_t>(config.minLeafFraction *
                                     static_cast<double>(
                                         data.numRows())));
        minLeaf_ = std::max<std::size_t>(minLeaf_, 1);
    }

    std::unique_ptr<Node>
    build()
    {
        std::vector<std::size_t> rows(data_.numRows());
        std::iota(rows.begin(), rows.end(), std::size_t(0));
        globalSd_ = targetSd(rows);
        auto root = buildNode(rows, 0);
        fitModels(root.get());
        if (config_.prune)
            prune(root.get());
        if (config_.smooth && !config_.constantLeaves)
            smooth(root.get(), nullptr);
        return root;
    }

    double globalSd() const { return globalSd_; }

  private:
    /** Mean/sd of the target over a row subset. */
    double
    targetSd(std::span<const std::size_t> rows) const
    {
        if (rows.size() < 2)
            return 0.0;
        double sum = 0.0;
        for (std::size_t r : rows)
            sum += data_.at(r, target_);
        const double mean = sum / static_cast<double>(rows.size());
        double ss = 0.0;
        for (std::size_t r : rows) {
            const double d = data_.at(r, target_) - mean;
            ss += d * d;
        }
        return std::sqrt(ss / static_cast<double>(rows.size() - 1));
    }

    struct Split
    {
        std::size_t attr = 0;
        double value = 0.0;
        double sdr = -1.0;
    };

    /**
     * Best SDR split for one attribute, delegated to the shared
     * split-search kernel (mtree/split_search.hh). Attributes are
     * scanned in ascending index order and the incumbent is replaced
     * only on strict improvement, so cross-attribute SDR ties break
     * toward the lowest attribute index.
     */
    void
    bestSplitForAttribute(std::span<const std::size_t> rows,
                          std::size_t attr, double node_sd,
                          Split &best) const
    {
        scratch_.clear();
        scratch_.reserve(rows.size());
        for (std::size_t r : rows)
            scratch_.push_back({data_.at(r, attr),
                                data_.at(r, target_)});
        const SplitCandidate cand =
            findBestSdrSplit(scratch_, node_sd, minLeaf_);
        if (cand.valid && cand.sdr > best.sdr) {
            best.sdr = cand.sdr;
            best.attr = attr;
            best.value = cand.value;
        }
    }

    std::unique_ptr<Node>
    buildNode(std::vector<std::size_t> &rows, std::size_t depth)
    {
        auto node = std::make_unique<Node>();
        node->count = rows.size();
        double sum = 0.0;
        for (std::size_t r : rows)
            sum += data_.at(r, target_);
        node->meanTarget =
            rows.empty() ? 0.0
                         : sum / static_cast<double>(rows.size());
        node->sd = targetSd(rows);

        const bool can_split = rows.size() >= 2 * minLeaf_ &&
            rows.size() >= 4 && depth < config_.maxDepth &&
            node->sd >= config_.sdThresholdFraction * globalSd_;
        Split best;
        if (can_split) {
            for (std::size_t attr : predictors_)
                bestSplitForAttribute(rows, attr, node->sd, best);
        }
        if (best.sdr <= 0.0) {
            node->rows = std::move(rows);
            return node;
        }

        node->isLeaf = false;
        node->splitAttr = best.attr;
        node->splitValue = best.value;

        std::vector<std::size_t> left_rows;
        std::vector<std::size_t> right_rows;
        left_rows.reserve(rows.size());
        right_rows.reserve(rows.size());
        for (std::size_t r : rows)
            (data_.at(r, best.attr) <= best.value ? left_rows
                                                  : right_rows)
                .push_back(r);
        node->rows = std::move(rows);
        node->left = buildNode(left_rows, depth + 1);
        node->right = buildNode(right_rows, depth + 1);
        return node;
    }

    /** Fit (and simplify) the model at every node, bottom-up. */
    void
    fitModels(Node *node)
    {
        if (!node->isLeaf) {
            fitModels(node->left.get());
            fitModels(node->right.get());
        }
        GramAccumulator gram(predictors_, target_);
        gram.addRows(data_, node->rows);
        if (config_.constantLeaves) {
            node->model.intercept = node->meanTarget;
            const double n = static_cast<double>(node->count);
            node->adjustedError =
                node->sd * std::sqrt(std::max(0.0, (n - 1.0) / n));
            return;
        }
        if (config_.simplifyModels) {
            node->model = gram.fitSimplified(node->adjustedError);
        } else {
            std::vector<std::size_t> all(predictors_.size());
            std::iota(all.begin(), all.end(), std::size_t(0));
            double rss = 0.0;
            node->model = gram.fitSubset(all, rss);
            node->adjustedError =
                gram.adjustedError(rss, all.size());
        }
    }

    /**
     * Quinlan-style pruning: replace a subtree by its node model when
     * the model's compensated error is no worse than the subtree's
     * weighted compensated error.
     */
    double
    prune(Node *node)
    {
        if (node->isLeaf)
            return node->adjustedError;
        const double err_left = prune(node->left.get());
        const double err_right = prune(node->right.get());
        const double nl = static_cast<double>(node->left->count);
        const double nr = static_cast<double>(node->right->count);
        const double subtree_err =
            (nl * err_left + nr * err_right) / (nl + nr);
        if (node->adjustedError <= subtree_err) {
            node->isLeaf = true;
            node->left.reset();
            node->right.reset();
            return node->adjustedError;
        }
        return subtree_err;
    }

    /**
     * Fold WEKA-style smoothing into the models top-down:
     * smoothed(child) = (n*model(child) + k*smoothed(parent))/(n+k).
     * Linear blends of linear models stay linear, so the printed leaf
     * equations are the exact prediction functions.
     */
    void
    smooth(Node *node, const LinearModel *parent)
    {
        if (parent != nullptr) {
            const double n = static_cast<double>(node->count);
            const double k = config_.smoothingK;
            const double wn = n / (n + k);
            const double wk = k / (n + k);

            // Blend into a dense coefficient map over predictors.
            LinearModel blended;
            blended.intercept = wn * node->model.intercept +
                wk * parent->intercept;
            std::vector<double> dense(data_.numColumns(), 0.0);
            for (std::size_t i = 0; i < node->model.attributes.size();
                 ++i) {
                dense[node->model.attributes[i]] +=
                    wn * node->model.coefficients[i];
            }
            for (std::size_t i = 0; i < parent->attributes.size();
                 ++i) {
                dense[parent->attributes[i]] +=
                    wk * parent->coefficients[i];
            }
            for (std::size_t c = 0; c < dense.size(); ++c) {
                if (dense[c] != 0.0) {
                    blended.attributes.push_back(c);
                    blended.coefficients.push_back(dense[c]);
                }
            }
            node->model = std::move(blended);
        }
        if (!node->isLeaf) {
            smooth(node->left.get(), &node->model);
            smooth(node->right.get(), &node->model);
        }
    }

    const Dataset &data_;
    std::size_t target_;
    ModelTreeConfig config_;
    std::vector<std::size_t> predictors_;
    std::size_t minLeaf_ = 4;
    double globalSd_ = 0.0;
    mutable std::vector<SplitObservation> scratch_;
};

ModelTree
ModelTree::train(const Dataset &data, const std::string &target,
                 const ModelTreeConfig &config)
{
    if (data.numRows() == 0)
        wct_fatal("cannot train a model tree on an empty dataset");
    if (data.numColumns() < 2)
        wct_fatal("model tree needs at least one predictor column");

    ModelTree tree;
    tree.target_ = target;
    tree.targetColumn_ = data.columnIndex(target);
    tree.schema_ = data.columnNames();
    tree.config_ = config;

    Builder builder(data, tree.targetColumn_, config);
    tree.root_ = builder.build();
    tree.globalSd_ = builder.globalSd();
    tree.targetMin_ = data.at(0, tree.targetColumn_);
    tree.targetMax_ = tree.targetMin_;
    for (std::size_t r = 1; r < data.numRows(); ++r) {
        const double y = data.at(r, tree.targetColumn_);
        tree.targetMin_ = std::min(tree.targetMin_, y);
        tree.targetMax_ = std::max(tree.targetMax_, y);
    }
    tree.collectLeaves(tree.root_.get());
    return tree;
}

void
ModelTree::collectLeaves(Node *node)
{
    if (node->isLeaf) {
        node->leafIndex = leafNodes_.size();
        node->rows.clear();
        node->rows.shrink_to_fit();
        leafNodes_.push_back(node);
        LeafInfo info;
        info.number = leafNodes_.size();
        info.count = node->count;
        info.fraction = root_->count > 0
            ? static_cast<double>(node->count) /
                static_cast<double>(root_->count)
            : 0.0;
        info.meanTarget = node->meanTarget;
        info.model = node->model;
        leaves_.push_back(std::move(info));
        return;
    }
    node->rows.clear();
    node->rows.shrink_to_fit();
    collectLeaves(node->left.get());
    collectLeaves(node->right.get());
}

const ModelTree::Node *
ModelTree::descend(std::span<const double> row) const
{
    wct_assert(root_ != nullptr, "predict on an untrained tree");
    wct_assert(row.size() == schema_.size(),
               "row arity ", row.size(), " != schema ",
               schema_.size());
    const Node *node = root_.get();
    while (!node->isLeaf) {
        node = row[node->splitAttr] <= node->splitValue
            ? node->left.get() : node->right.get();
    }
    return node;
}

double
ModelTree::predict(std::span<const double> row) const
{
    const double raw = descend(row)->model.predict(row);
    if (!config_.clampPredictions)
        return raw;
    // One global-sd margin around the observed training range.
    const double margin = globalSd_;
    return std::clamp(raw, targetMin_ - margin, targetMax_ + margin);
}

std::size_t
ModelTree::classify(std::span<const double> row) const
{
    return descend(row)->leafIndex;
}

std::vector<std::size_t>
ModelTree::classifyAll(const Dataset &data) const
{
    checkSchema(data);
    std::vector<std::size_t> out;
    out.reserve(data.numRows());
    for (std::size_t r = 0; r < data.numRows(); ++r)
        out.push_back(classify(data.row(r)));
    return out;
}

std::vector<SplitCondition>
ModelTree::leafPath(std::size_t index) const
{
    wct_assert(index < leafNodes_.size(), "bad leaf index ", index);
    std::vector<SplitCondition> path;
    const Node *target_leaf = leafNodes_[index];
    const Node *node = root_.get();
    while (!node->isLeaf) {
        // Determine which side contains the target leaf by comparing
        // leaf index ranges: leaves are numbered in-order.
        const Node *left = node->left.get();
        // Find the max leaf index in the left subtree.
        const Node *probe = left;
        while (!probe->isLeaf)
            probe = probe->right.get();
        SplitCondition cond;
        cond.attribute = node->splitAttr;
        cond.value = node->splitValue;
        cond.lessOrEqual = target_leaf->leafIndex <= probe->leafIndex;
        path.push_back(cond);
        node = cond.lessOrEqual ? node->left.get() : node->right.get();
    }
    wct_assert(node == target_leaf, "leaf path descent mismatch");
    return path;
}

std::size_t
ModelTree::numSplits() const
{
    return leafNodes_.empty() ? 0 : leafNodes_.size() - 1;
}

std::vector<std::size_t>
ModelTree::splitAttributes() const
{
    std::vector<bool> used(schema_.size(), false);
    std::vector<const Node *> stack = {root_.get()};
    while (!stack.empty()) {
        const Node *node = stack.back();
        stack.pop_back();
        if (node->isLeaf)
            continue;
        used[node->splitAttr] = true;
        stack.push_back(node->left.get());
        stack.push_back(node->right.get());
    }
    std::vector<std::size_t> out;
    for (std::size_t c = 0; c < used.size(); ++c)
        if (used[c])
            out.push_back(c);
    return out;
}

void
ModelTree::describeNode(const Node *node, int depth,
                        std::string &out) const
{
    const std::string indent(static_cast<std::size_t>(depth) * 4, ' ');
    if (node->isLeaf) {
        out += indent + "-> LM" +
            std::to_string(node->leafIndex + 1) + "  (" +
            formatDouble(100.0 * static_cast<double>(node->count) /
                             static_cast<double>(root_->count),
                         1) +
            "% of samples, avg " + target_ + " " +
            formatDouble(node->meanTarget, 2) + ")\n";
        return;
    }
    const std::string &name = schema_[node->splitAttr];
    out += indent + name + " <= " + formatCompact(node->splitValue) +
        " :\n";
    describeNode(node->left.get(), depth + 1, out);
    out += indent + name + " >  " + formatCompact(node->splitValue) +
        " :\n";
    describeNode(node->right.get(), depth + 1, out);
}

std::string
ModelTree::describe() const
{
    wct_assert(root_ != nullptr, "describe on an untrained tree");
    std::string out;
    describeNode(root_.get(), 0, out);
    out += "\n";
    for (const LeafInfo &leaf : leaves_) {
        out += "LM" + std::to_string(leaf.number) + " (" +
            formatDouble(100.0 * leaf.fraction, 2) + "%, avg " +
            target_ + " " + formatDouble(leaf.meanTarget, 2) +
            "):\n    " + leaf.model.describe(schema_, target_) + "\n";
    }
    return out;
}

std::string
ModelTree::toDot() const
{
    wct_assert(root_ != nullptr, "toDot on an untrained tree");
    std::string out = "digraph mtree {\n  node [fontsize=10];\n";
    std::size_t next_id = 0;
    // Iterative DFS with explicit ids.
    struct Item
    {
        const Node *node;
        std::size_t id;
    };
    std::vector<Item> stack = {{root_.get(), next_id++}};
    while (!stack.empty()) {
        const Item item = stack.back();
        stack.pop_back();
        const Node *node = item.node;
        const double pct = 100.0 * static_cast<double>(node->count) /
            static_cast<double>(root_->count);
        if (node->isLeaf) {
            out += "  n" + std::to_string(item.id) +
                " [shape=box,label=\"LM" +
                std::to_string(node->leafIndex + 1) + "\\n" +
                formatDouble(pct, 1) + "%  avg " +
                formatDouble(node->meanTarget, 2) + "\"];\n";
            continue;
        }
        out += "  n" + std::to_string(item.id) +
            " [shape=oval,label=\"" + schema_[node->splitAttr] +
            "\\n" + formatDouble(pct, 1) + "%  avg " +
            formatDouble(node->meanTarget, 2) + "\"];\n";
        const std::size_t left_id = next_id++;
        const std::size_t right_id = next_id++;
        out += "  n" + std::to_string(item.id) + " -> n" +
            std::to_string(left_id) + " [label=\"<= " +
            formatCompact(node->splitValue) + "\"];\n";
        out += "  n" + std::to_string(item.id) + " -> n" +
            std::to_string(right_id) + " [label=\"> " +
            formatCompact(node->splitValue) + "\"];\n";
        stack.push_back({node->left.get(), left_id});
        stack.push_back({node->right.get(), right_id});
    }
    out += "}\n";
    return out;
}

} // namespace wct
