#include "mtree/model_tree.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "mtree/compiled_tree.hh"
#include "mtree/split_search.hh"
#include "util/logging.hh"
#include "util/radix_sort.hh"
#include "util/string_utils.hh"
#include "util/thread_pool.hh"

namespace wct
{

namespace
{

/**
 * Minimum node size for spawning the left subtree (and the phase
 * recursions below it) as a stealable task. Scheduling-only knob:
 * results are identical at any value.
 */
constexpr std::size_t kSubtreeTaskRows = 192;

/** Minimum node size for evaluating attributes as parallel tasks. */
constexpr std::size_t kAttrTaskRows = 512;

} // namespace

/**
 * Training-time helper holding the dataset and hyper-parameters so
 * the recursive routines do not thread a dozen arguments.
 *
 * Three engines share this class (see TreeBuilderKind): the reference
 * builder re-sorts each attribute at every node; the presorted
 * builder sorts each attribute once at the root and stably partitions
 * the per-attribute row orders down the tree (O(A·n) per node); the
 * parallel builder runs the presorted kernels under the work-stealing
 * pool — attributes of a big node concurrently, independent subtrees
 * as tasks, and the fit/prune/smooth phases per subtree. All three
 * produce bit-identical trees: the split kernels share one sweep
 * (split_search.cc), every iteration order is pinned (rows ascending;
 * equal attribute values in row order), and parallel results land in
 * pre-sized slots reduced in fixed attribute order.
 */
class ModelTree::Builder
{
  public:
    Builder(const Dataset &data, std::size_t target,
            const ModelTreeConfig &config)
        : data_(data), target_(target), config_(config)
    {
        for (std::size_t c = 0; c < data.numColumns(); ++c)
            if (c != target)
                predictors_.push_back(c);

        minLeaf_ = std::max<std::size_t>(
            config.minLeafInstances,
            static_cast<std::size_t>(config.minLeafFraction *
                                     static_cast<double>(
                                         data.numRows())));
        minLeaf_ = std::max<std::size_t>(minLeaf_, 1);

        kind_ = config.builder;
        if (kind_ == TreeBuilderKind::Auto)
            kind_ = TreeBuilderKind::Parallel;
        if (kind_ == TreeBuilderKind::Parallel &&
            ThreadPool::global().workerCount() == 0)
            kind_ = TreeBuilderKind::Presorted; // WCT_THREADS=1
        parallel_ = kind_ == TreeBuilderKind::Parallel;
    }

    std::unique_ptr<Node>
    build()
    {
        std::vector<std::size_t> rows(data_.numRows());
        std::iota(rows.begin(), rows.end(), std::size_t(0));
        globalSd_ = targetMoments(rows).sd;

        std::unique_ptr<Node> root;
        if (kind_ == TreeBuilderKind::Serial) {
            root = buildNodeSerial(rows, 0);
        } else {
            wct_assert(data_.numRows() <=
                           std::numeric_limits<std::uint32_t>::max(),
                       "presorted builder indexes rows with 32 bits");
            columns_ = data_.columnMajor();
            buildPresorted();
            root = buildNodePresorted(rows, 0, data_.numRows(), 0);
        }
        fitModels(root.get());
        if (config_.prune)
            prune(root.get());
        if (config_.smooth && !config_.constantLeaves)
            smooth(root.get(), nullptr);
        return root;
    }

    double globalSd() const { return globalSd_; }

  private:
    struct TargetMoments
    {
        double mean = 0.0;
        double sd = 0.0; ///< unbiased (n - 1) standard deviation
    };

    /**
     * Mean and sd of the target over a row subset in one Welford
     * pass. Every builder iterates rows in ascending row order and
     * funnels through this one loop, so the accumulated values are
     * identical across engines regardless of how the target is
     * fetched (row-major Dataset or column pointer).
     */
    template <typename TargetAt>
    static TargetMoments
    welfordMoments(std::span<const std::size_t> rows, TargetAt y_at)
    {
        TargetMoments moments;
        double mean = 0.0;
        double m2 = 0.0;
        std::size_t k = 0;
        for (std::size_t r : rows) {
            const double y = y_at(r);
            ++k;
            const double delta = y - mean;
            mean += delta / static_cast<double>(k);
            m2 += delta * (y - mean);
        }
        if (k > 0)
            moments.mean = mean;
        if (k > 1)
            moments.sd =
                std::sqrt(m2 / static_cast<double>(k - 1));
        return moments;
    }

    TargetMoments
    targetMoments(std::span<const std::size_t> rows) const
    {
        return welfordMoments(
            rows, [this](std::size_t r) { return data_.at(r, target_); });
    }

    /** Initialize a node's count/mean/sd from its row subset. */
    static void
    applyMoments(Node &node, std::span<const std::size_t> rows,
                 const TargetMoments &moments)
    {
        node.count = rows.size();
        node.meanTarget = moments.mean;
        node.sd = moments.sd;
    }

    /** The M5 stopping rule (shared verbatim by all engines). */
    bool
    canSplit(const Node &node, std::size_t depth) const
    {
        return node.count >= 2 * minLeaf_ && node.count >= 4 &&
            depth < config_.maxDepth &&
            node.sd >= config_.sdThresholdFraction * globalSd_;
    }

    struct Split
    {
        std::size_t attr = 0;
        double value = 0.0;
        double sdr = -1.0;
    };

    /**
     * Fold one attribute's candidate into the incumbent. Attributes
     * are considered in ascending index order and replaced only on
     * strict improvement, so cross-attribute SDR ties break toward
     * the lowest attribute index — in every engine, because the
     * parallel path stores candidates in per-attribute slots and
     * reduces them through this same loop.
     */
    static void
    consider(const SplitCandidate &cand, std::size_t attr,
             Split &best)
    {
        if (cand.valid && cand.sdr > best.sdr) {
            best.sdr = cand.sdr;
            best.attr = attr;
            best.value = cand.value;
        }
    }

    // ---- Reference engine: per-node sort. ----

    /**
     * Best SDR split for one attribute, delegated to the shared
     * split-search kernel (mtree/split_search.hh). The scratch buffer
     * is owned by the calling node (stack-local), never by the
     * builder, so concurrent builds of sibling subtrees cannot race.
     */
    void
    bestSplitForAttribute(std::span<const std::size_t> rows,
                          std::size_t attr, double node_sd,
                          Split &best,
                          std::vector<SplitObservation> &scratch) const
    {
        scratch.clear();
        scratch.reserve(rows.size());
        for (std::size_t r : rows)
            scratch.push_back({data_.at(r, attr),
                               data_.at(r, target_)});
        consider(findBestSdrSplit(scratch, node_sd, minLeaf_), attr,
                 best);
    }

    std::unique_ptr<Node>
    buildNodeSerial(std::vector<std::size_t> &rows, std::size_t depth)
    {
        auto node = std::make_unique<Node>();
        applyMoments(*node, rows, targetMoments(rows));

        Split best;
        if (canSplit(*node, depth)) {
            std::vector<SplitObservation> scratch;
            for (std::size_t attr : predictors_)
                bestSplitForAttribute(rows, attr, node->sd, best,
                                      scratch);
        }
        if (best.sdr <= 0.0) {
            node->rows = std::move(rows);
            return node;
        }

        node->isLeaf = false;
        node->splitAttr = best.attr;
        node->splitValue = best.value;

        std::vector<std::size_t> left_rows;
        std::vector<std::size_t> right_rows;
        left_rows.reserve(rows.size());
        right_rows.reserve(rows.size());
        for (std::size_t r : rows)
            (data_.at(r, best.attr) <= best.value ? left_rows
                                                  : right_rows)
                .push_back(r);
        node->rows = std::move(rows);
        node->left = buildNodeSerial(left_rows, depth + 1);
        node->right = buildNodeSerial(right_rows, depth + 1);
        return node;
    }

    // ---- Presorted engine (optionally parallel). ----

    /**
     * Build the root working sets: for each predictor, the row ids
     * stably sorted ascending by that column, with the sorted values
     * and matching targets materialized as contiguous arrays (one
     * gather at the root buys gather-free streaming sweeps at every
     * node). Stability makes equal values appear in ascending row
     * order, matching what the reference engine's stable per-node
     * sort produces — the anchor of the bit-identical guarantee.
     */
    void
    buildPresorted()
    {
        const std::size_t n = data_.numRows();
        goesLeft_.assign(n, 0);
        presorted_.resize(predictors_.size());
        const double *targets = columns_.columnData(target_);
        const auto sort_one = [this, n, targets](std::size_t p) {
            // Branchless radix sort on order-preserving key
            // transforms of the column values (util/radix_sort.hh):
            // stable, so equal values keep ascending row order — the
            // exact permutation a stable comparison sort would give —
            // at a fraction of the mispredict-bound cost. The sorted
            // values and matching targets are then gathered once into
            // contiguous arrays.
            const double *values =
                columns_.columnData(predictors_[p]);
            std::vector<KeyRow> entries(n);
            for (std::size_t i = 0; i < n; ++i)
                entries[i] = {orderedKeyFromDouble(values[i]),
                              static_cast<std::uint32_t>(i)};
            std::vector<KeyRow> scratch;
            radixSortKeyRows(entries, scratch);
            PresortedColumn &col = presorted_[p];
            col.values.resize(n);
            col.targets.resize(n);
            col.rows.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint32_t row = entries[i].row;
                col.values[i] = values[row];
                col.targets[i] = targets[row];
                col.rows[i] = row;
            }
        };
        if (parallel_) {
            parallelFor(predictors_.size(), sort_one);
        } else {
            for (std::size_t p = 0; p < predictors_.size(); ++p)
                sort_one(p);
        }
    }

    /**
     * Presorted node build over the working-set range [lo, hi): every
     * attribute's PresortedColumn holds exactly this node's rows in
     * that range (in attribute order). Split evaluation is one linear
     * sweep per attribute; descending partitions each range stably
     * around the chosen split, so children own [lo, mid) and
     * [mid, hi) with the invariant intact. Sibling ranges are
     * disjoint — and sibling row sets too, so concurrent subtree
     * tasks touch disjoint slices of the shared working sets and
     * disjoint bytes of the goesLeft_ mask.
     */
    std::unique_ptr<Node>
    buildNodePresorted(std::vector<std::size_t> &rows, std::size_t lo,
                       std::size_t hi, std::size_t depth)
    {
        wct_assert(hi - lo == rows.size(),
                   "working-set range ", hi - lo, " != node rows ",
                   rows.size());
        auto node = std::make_unique<Node>();
        const double *targets = columns_.columnData(target_);
        applyMoments(*node, rows,
                     welfordMoments(rows, [targets](std::size_t r) {
                         return targets[r];
                     }));

        Split best;
        if (canSplit(*node, depth)) {
            const std::size_t num_p = predictors_.size();
            const auto eval_one = [&](std::size_t p) {
                const PresortedColumn &col = presorted_[p];
                return findBestSdrSplitPresorted(
                    std::span<const double>(col.values)
                        .subspan(lo, hi - lo),
                    std::span<const double>(col.targets)
                        .subspan(lo, hi - lo),
                    node->sd, minLeaf_);
            };
            if (parallel_ && num_p > 1 &&
                rows.size() >= kAttrTaskRows) {
                std::vector<SplitCandidate> candidates(num_p);
                TaskGroup group;
                for (std::size_t p = 0; p < num_p; ++p)
                    group.run([&candidates, &eval_one, p] {
                        candidates[p] = eval_one(p);
                    });
                group.wait();
                for (std::size_t p = 0; p < num_p; ++p)
                    consider(candidates[p], predictors_[p], best);
            } else {
                for (std::size_t p = 0; p < num_p; ++p)
                    consider(eval_one(p), predictors_[p], best);
            }
        }
        if (best.sdr <= 0.0) {
            node->rows = std::move(rows);
            return node;
        }

        node->isLeaf = false;
        node->splitAttr = best.attr;
        node->splitValue = best.value;

        // Partition the node rows and write the per-row side mask the
        // attribute partitions read (this node's rows only, so
        // concurrent sibling subtrees write disjoint mask bytes).
        const double *split_values = columns_.columnData(best.attr);
        std::vector<std::size_t> left_rows;
        std::vector<std::size_t> right_rows;
        left_rows.reserve(rows.size());
        right_rows.reserve(rows.size());
        for (std::size_t r : rows) {
            const bool left = split_values[r] <= best.value;
            goesLeft_[r] = left ? 1 : 0;
            (left ? left_rows : right_rows).push_back(r);
        }
        node->rows = std::move(rows);

        const std::size_t mid = lo + left_rows.size();
        const auto partition_one =
            [this, lo, hi, expect_left = left_rows.size()](
                std::size_t p, PresortedColumn &scratch) {
                const std::size_t nl = stablePartitionPresorted(
                    presorted_[p], lo, hi, goesLeft_.data(),
                    scratch);
                wct_assert(nl == expect_left,
                           "attribute partition produced ", nl,
                           " left rows, expected ", expect_left);
            };
        if (parallel_ && predictors_.size() > 1 &&
            hi - lo >= kAttrTaskRows) {
            TaskGroup group;
            for (std::size_t p = 0; p < predictors_.size(); ++p)
                group.run([&partition_one, p] {
                    PresortedColumn scratch;
                    partition_one(p, scratch);
                });
            group.wait();
        } else {
            PresortedColumn scratch;
            for (std::size_t p = 0; p < predictors_.size(); ++p)
                partition_one(p, scratch);
        }

        if (parallel_ && node->count >= kSubtreeTaskRows) {
            TaskGroup group;
            group.run([this, &node, &left_rows, lo, mid, depth] {
                node->left =
                    buildNodePresorted(left_rows, lo, mid, depth + 1);
            });
            node->right =
                buildNodePresorted(right_rows, mid, hi, depth + 1);
            group.wait();
        } else {
            node->left =
                buildNodePresorted(left_rows, lo, mid, depth + 1);
            node->right =
                buildNodePresorted(right_rows, mid, hi, depth + 1);
        }
        return node;
    }

    // ---- Model fitting, pruning, smoothing (all engines). ----

    /** Fit (and simplify) the model at one node. */
    void
    fitNodeModel(Node *node) const
    {
        if (config_.constantLeaves) {
            // The constant model needs only the moments the build
            // already computed; no normal equations to accumulate.
            node->model.intercept = node->meanTarget;
            const double n = static_cast<double>(node->count);
            node->adjustedError =
                node->sd * std::sqrt(std::max(0.0, (n - 1.0) / n));
            return;
        }
        GramAccumulator gram(predictors_, target_);
        gram.addRows(data_, node->rows);
        if (config_.simplifyModels) {
            node->model = gram.fitSimplified(node->adjustedError);
        } else {
            std::vector<std::size_t> all(predictors_.size());
            std::iota(all.begin(), all.end(), std::size_t(0));
            double rss = 0.0;
            node->model = gram.fitSubset(all, rss);
            node->adjustedError =
                gram.adjustedError(rss, all.size());
        }
    }

    /**
     * Fit models bottom-up. Node fits are mutually independent (each
     * reads only its own row subset), so subtrees fit as tasks.
     */
    void
    fitModels(Node *node)
    {
        if (!node->isLeaf) {
            if (parallel_ && node->count >= kSubtreeTaskRows) {
                TaskGroup group;
                group.run([this, left = node->left.get()] {
                    fitModels(left);
                });
                fitModels(node->right.get());
                group.wait();
            } else {
                fitModels(node->left.get());
                fitModels(node->right.get());
            }
        }
        fitNodeModel(node);
    }

    /**
     * Quinlan-style pruning: replace a subtree by its node model when
     * the model's compensated error is no worse than the subtree's
     * weighted compensated error. Each subtree's verdict depends only
     * on its own nodes, so the two recursions run as tasks.
     */
    double
    prune(Node *node)
    {
        if (node->isLeaf)
            return node->adjustedError;
        double err_left = 0.0;
        double err_right = 0.0;
        if (parallel_ && node->count >= kSubtreeTaskRows) {
            TaskGroup group;
            group.run([this, &err_left, left = node->left.get()] {
                err_left = prune(left);
            });
            err_right = prune(node->right.get());
            group.wait();
        } else {
            err_left = prune(node->left.get());
            err_right = prune(node->right.get());
        }
        const double nl = static_cast<double>(node->left->count);
        const double nr = static_cast<double>(node->right->count);
        const double subtree_err =
            (nl * err_left + nr * err_right) / (nl + nr);
        if (node->adjustedError <= subtree_err) {
            node->isLeaf = true;
            node->left.reset();
            node->right.reset();
            return node->adjustedError;
        }
        return subtree_err;
    }

    /**
     * Fold WEKA-style smoothing into the models top-down:
     * smoothed(child) = (n*model(child) + k*smoothed(parent))/(n+k).
     * Linear blends of linear models stay linear, so the printed leaf
     * equations are the exact prediction functions. A node's blend is
     * finished before its children are visited, so the two child
     * recursions (which read only the parent model) run as tasks.
     */
    void
    smooth(Node *node, const LinearModel *parent)
    {
        if (parent != nullptr) {
            const double n = static_cast<double>(node->count);
            const double k = config_.smoothingK;
            const double wn = n / (n + k);
            const double wk = k / (n + k);

            // Blend into a dense coefficient map over predictors.
            LinearModel blended;
            blended.intercept = wn * node->model.intercept +
                wk * parent->intercept;
            std::vector<double> dense(data_.numColumns(), 0.0);
            for (std::size_t i = 0; i < node->model.attributes.size();
                 ++i) {
                dense[node->model.attributes[i]] +=
                    wn * node->model.coefficients[i];
            }
            for (std::size_t i = 0; i < parent->attributes.size();
                 ++i) {
                dense[parent->attributes[i]] +=
                    wk * parent->coefficients[i];
            }
            for (std::size_t c = 0; c < dense.size(); ++c) {
                if (dense[c] != 0.0) {
                    blended.attributes.push_back(c);
                    blended.coefficients.push_back(dense[c]);
                }
            }
            node->model = std::move(blended);
        }
        if (!node->isLeaf) {
            if (parallel_ && node->count >= kSubtreeTaskRows) {
                TaskGroup group;
                group.run([this, left = node->left.get(),
                           model = &node->model] {
                    smooth(left, model);
                });
                smooth(node->right.get(), &node->model);
                group.wait();
            } else {
                smooth(node->left.get(), &node->model);
                smooth(node->right.get(), &node->model);
            }
        }
    }

    const Dataset &data_;
    std::size_t target_;
    ModelTreeConfig config_;
    std::vector<std::size_t> predictors_;
    std::size_t minLeaf_ = 4;
    double globalSd_ = 0.0;
    TreeBuilderKind kind_ = TreeBuilderKind::Auto;
    bool parallel_ = false;

    // Presorted-engine state: the column-major snapshot, one sorted
    // working set per predictor, and the per-row split-side mask.
    ColumnStore columns_;
    std::vector<PresortedColumn> presorted_;
    std::vector<unsigned char> goesLeft_;
};

ModelTree
ModelTree::train(const Dataset &data, const std::string &target,
                 const ModelTreeConfig &config)
{
    if (data.numRows() == 0)
        wct_fatal("cannot train a model tree on an empty dataset");
    if (data.numColumns() < 2)
        wct_fatal("model tree needs at least one predictor column");

    ModelTree tree;
    tree.target_ = target;
    tree.targetColumn_ = data.columnIndex(target);
    tree.schema_ = data.columnNames();
    tree.config_ = config;

    Builder builder(data, tree.targetColumn_, config);
    tree.root_ = builder.build();
    tree.globalSd_ = builder.globalSd();
    tree.targetMin_ = data.at(0, tree.targetColumn_);
    tree.targetMax_ = tree.targetMin_;
    for (std::size_t r = 1; r < data.numRows(); ++r) {
        const double y = data.at(r, tree.targetColumn_);
        tree.targetMin_ = std::min(tree.targetMin_, y);
        tree.targetMax_ = std::max(tree.targetMax_, y);
    }
    tree.finalize();
    return tree;
}

void
ModelTree::finalize()
{
    collectLeaves(root_.get());
    compiled_ = std::make_shared<const CompiledTree>(
        CompiledTree::compile(*this));
}

const CompiledTree &
ModelTree::compiled() const
{
    wct_assert(compiled_ != nullptr,
               "compiled form requested on an untrained tree");
    return *compiled_;
}

void
ModelTree::collectLeaves(Node *node)
{
    if (node->isLeaf) {
        node->leafIndex = leafNodes_.size();
        node->rows.clear();
        node->rows.shrink_to_fit();
        leafNodes_.push_back(node);
        LeafInfo info;
        info.number = leafNodes_.size();
        info.count = node->count;
        info.fraction = root_->count > 0
            ? static_cast<double>(node->count) /
                static_cast<double>(root_->count)
            : 0.0;
        info.meanTarget = node->meanTarget;
        info.model = node->model;
        leaves_.push_back(std::move(info));
        return;
    }
    node->rows.clear();
    node->rows.shrink_to_fit();
    collectLeaves(node->left.get());
    collectLeaves(node->right.get());
}

const ModelTree::Node *
ModelTree::descend(std::span<const double> row) const
{
    wct_assert(root_ != nullptr, "predict on an untrained tree");
    wct_assert(row.size() == schema_.size(),
               "row arity ", row.size(), " != schema ",
               schema_.size());
    const Node *node = root_.get();
    while (!node->isLeaf) {
        node = row[node->splitAttr] <= node->splitValue
            ? node->left.get() : node->right.get();
    }
    return node;
}

double
ModelTree::predict(std::span<const double> row) const
{
    const double raw = descend(row)->model.predict(row);
    if (!config_.clampPredictions)
        return raw;
    // One global-sd margin around the observed training range.
    const double margin = globalSd_;
    return std::clamp(raw, targetMin_ - margin, targetMax_ + margin);
}

std::size_t
ModelTree::classify(std::span<const double> row) const
{
    return descend(row)->leafIndex;
}

namespace
{

/**
 * Rows per parallel task of the batch evaluators below. A multiple
 * of CompiledTree::kBlockRows so tasks tile evenly; sizing is a
 * scheduling knob only — each task writes its own output slots, so
 * results are byte-identical at any WCT_THREADS.
 */
constexpr std::size_t kEvalChunkRows = 4 * CompiledTree::kBlockRows;

} // namespace

std::vector<double>
ModelTree::predictAll(const Dataset &data) const
{
    checkSchema(data);
    // Compiled batch evaluation in contiguous chunks: bit-identical
    // to the per-row interpreted loop (the compiled_tree property
    // suite pins this), but branch-free and cache-linear.
    const CompiledTree &compiled_form = compiled();
    const std::size_t n = data.numRows();
    const std::size_t cols = data.numColumns();
    std::vector<double> out(n);
    const std::size_t chunks =
        (n + kEvalChunkRows - 1) / kEvalChunkRows;
    parallelFor(
        chunks,
        [&](std::size_t c) {
            const std::size_t lo = c * kEvalChunkRows;
            const std::size_t hi =
                std::min(n, lo + kEvalChunkRows);
            compiled_form.evaluateBlock(data.row(lo).data(), cols,
                                        hi - lo, out.data() + lo,
                                        nullptr);
        },
        ThreadPool::global(), /*min_chunk=*/1);
    return out;
}

std::vector<std::size_t>
ModelTree::classifyAll(const Dataset &data) const
{
    checkSchema(data);
    const CompiledTree &compiled_form = compiled();
    const std::size_t n = data.numRows();
    const std::size_t cols = data.numColumns();
    std::vector<std::size_t> out(n);
    const std::size_t chunks =
        (n + kEvalChunkRows - 1) / kEvalChunkRows;
    parallelFor(
        chunks,
        [&](std::size_t c) {
            const std::size_t lo = c * kEvalChunkRows;
            const std::size_t hi =
                std::min(n, lo + kEvalChunkRows);
            std::uint32_t leaves[kEvalChunkRows];
            compiled_form.evaluateBlock(data.row(lo).data(), cols,
                                        hi - lo, nullptr, leaves);
            for (std::size_t i = lo; i < hi; ++i)
                out[i] = leaves[i - lo];
        },
        ThreadPool::global(), /*min_chunk=*/1);
    return out;
}

std::vector<SplitCondition>
ModelTree::leafPath(std::size_t index) const
{
    wct_assert(index < leafNodes_.size(), "bad leaf index ", index);
    std::vector<SplitCondition> path;
    const Node *target_leaf = leafNodes_[index];
    const Node *node = root_.get();
    while (!node->isLeaf) {
        // Determine which side contains the target leaf by comparing
        // leaf index ranges: leaves are numbered in-order.
        const Node *left = node->left.get();
        // Find the max leaf index in the left subtree.
        const Node *probe = left;
        while (!probe->isLeaf)
            probe = probe->right.get();
        SplitCondition cond;
        cond.attribute = node->splitAttr;
        cond.value = node->splitValue;
        cond.lessOrEqual = target_leaf->leafIndex <= probe->leafIndex;
        path.push_back(cond);
        node = cond.lessOrEqual ? node->left.get() : node->right.get();
    }
    wct_assert(node == target_leaf, "leaf path descent mismatch");
    return path;
}

std::size_t
ModelTree::numSplits() const
{
    return leafNodes_.empty() ? 0 : leafNodes_.size() - 1;
}

std::vector<std::size_t>
ModelTree::splitAttributes() const
{
    std::vector<bool> used(schema_.size(), false);
    std::vector<const Node *> stack = {root_.get()};
    while (!stack.empty()) {
        const Node *node = stack.back();
        stack.pop_back();
        if (node->isLeaf)
            continue;
        used[node->splitAttr] = true;
        stack.push_back(node->left.get());
        stack.push_back(node->right.get());
    }
    std::vector<std::size_t> out;
    for (std::size_t c = 0; c < used.size(); ++c)
        if (used[c])
            out.push_back(c);
    return out;
}

void
ModelTree::describeNode(const Node *node, int depth,
                        std::string &out) const
{
    const std::string indent(static_cast<std::size_t>(depth) * 4, ' ');
    if (node->isLeaf) {
        out += indent + "-> LM" +
            std::to_string(node->leafIndex + 1) + "  (" +
            formatDouble(100.0 * static_cast<double>(node->count) /
                             static_cast<double>(root_->count),
                         1) +
            "% of samples, avg " + target_ + " " +
            formatDouble(node->meanTarget, 2) + ")\n";
        return;
    }
    const std::string &name = schema_[node->splitAttr];
    out += indent + name + " <= " + formatCompact(node->splitValue) +
        " :\n";
    describeNode(node->left.get(), depth + 1, out);
    out += indent + name + " >  " + formatCompact(node->splitValue) +
        " :\n";
    describeNode(node->right.get(), depth + 1, out);
}

std::string
ModelTree::describe() const
{
    wct_assert(root_ != nullptr, "describe on an untrained tree");
    std::string out;
    describeNode(root_.get(), 0, out);
    out += "\n";
    for (const LeafInfo &leaf : leaves_) {
        out += "LM" + std::to_string(leaf.number) + " (" +
            formatDouble(100.0 * leaf.fraction, 2) + "%, avg " +
            target_ + " " + formatDouble(leaf.meanTarget, 2) +
            "):\n    " + leaf.model.describe(schema_, target_) + "\n";
    }
    return out;
}

std::string
ModelTree::toDot() const
{
    wct_assert(root_ != nullptr, "toDot on an untrained tree");
    std::string out = "digraph mtree {\n  node [fontsize=10];\n";
    std::size_t next_id = 0;
    // Iterative DFS with explicit ids.
    struct Item
    {
        const Node *node;
        std::size_t id;
    };
    std::vector<Item> stack = {{root_.get(), next_id++}};
    while (!stack.empty()) {
        const Item item = stack.back();
        stack.pop_back();
        const Node *node = item.node;
        const double pct = 100.0 * static_cast<double>(node->count) /
            static_cast<double>(root_->count);
        if (node->isLeaf) {
            out += "  n" + std::to_string(item.id) +
                " [shape=box,label=\"LM" +
                std::to_string(node->leafIndex + 1) + "\\n" +
                formatDouble(pct, 1) + "%  avg " +
                formatDouble(node->meanTarget, 2) + "\"];\n";
            continue;
        }
        out += "  n" + std::to_string(item.id) +
            " [shape=oval,label=\"" + schema_[node->splitAttr] +
            "\\n" + formatDouble(pct, 1) + "%  avg " +
            formatDouble(node->meanTarget, 2) + "\"];\n";
        const std::size_t left_id = next_id++;
        const std::size_t right_id = next_id++;
        out += "  n" + std::to_string(item.id) + " -> n" +
            std::to_string(left_id) + " [label=\"<= " +
            formatCompact(node->splitValue) + "\"];\n";
        out += "  n" + std::to_string(item.id) + " -> n" +
            std::to_string(right_id) + " [label=\"> " +
            formatCompact(node->splitValue) + "\"];\n";
        stack.push_back({node->left.get(), left_id});
        stack.push_back({node->right.get(), right_id});
    }
    out += "}\n";
    return out;
}

} // namespace wct
