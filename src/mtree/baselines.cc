#include "mtree/baselines.hh"

#include <numeric>

#include "util/logging.hh"

namespace wct
{

GlobalLinearRegression
GlobalLinearRegression::train(const Dataset &data,
                              const std::string &target, bool simplify)
{
    if (data.numRows() == 0)
        wct_fatal("cannot train a regression on an empty dataset");

    GlobalLinearRegression out;
    out.target_ = target;
    out.schema_ = data.columnNames();
    const std::size_t target_col = data.columnIndex(target);

    std::vector<std::size_t> predictors;
    for (std::size_t c = 0; c < data.numColumns(); ++c)
        if (c != target_col)
            predictors.push_back(c);

    GramAccumulator gram(predictors, target_col);
    std::vector<std::size_t> rows(data.numRows());
    std::iota(rows.begin(), rows.end(), std::size_t(0));
    gram.addRows(data, rows);

    if (simplify) {
        double err = 0.0;
        out.model_ = gram.fitSimplified(err);
    } else {
        std::vector<std::size_t> all(predictors.size());
        std::iota(all.begin(), all.end(), std::size_t(0));
        double rss = 0.0;
        out.model_ = gram.fitSubset(all, rss);
    }
    return out;
}

ModelTree
trainRegressionTree(const Dataset &data, const std::string &target,
                    ModelTreeConfig config)
{
    config.constantLeaves = true;
    config.smooth = false;
    return ModelTree::train(data, target, config);
}

} // namespace wct
