/**
 * @file
 * Common interface for trained regression models.
 *
 * All regressors in the toolkit predict a named target column from
 * the remaining columns of a dataset row, so a trained model can be
 * applied directly to any dataset with the same schema (the paper's
 * "apply the CPU2006 model to OMP2001 data" operation).
 */

#ifndef WCT_MTREE_REGRESSOR_HH
#define WCT_MTREE_REGRESSOR_HH

#include <span>
#include <string>
#include <vector>

#include "data/dataset.hh"

namespace wct
{

/** A trained model mapping a full dataset row to a target estimate. */
class Regressor
{
  public:
    virtual ~Regressor() = default;

    /**
     * Predict the target for one row laid out in the training
     * dataset's schema (the target cell itself is ignored).
     */
    virtual double predict(std::span<const double> row) const = 0;

    /** Name of the predicted column. */
    virtual const std::string &targetName() const = 0;

    /** Schema the model was trained on. */
    virtual const std::vector<std::string> &schema() const = 0;

    /**
     * Predict every row of a dataset; fatal if the dataset's schema
     * does not match the training schema. The default implementation
     * calls predict() per row over the thread pool; implementations
     * with a batch-optimized form (ModelTree's compiled evaluator)
     * override it — the override must stay byte-identical to the
     * per-row loop.
     */
    virtual std::vector<double> predictAll(const Dataset &data) const;

    /** Panic helper shared by implementations. */
    void checkSchema(const Dataset &data) const;
};

} // namespace wct

#endif // WCT_MTREE_REGRESSOR_HH
