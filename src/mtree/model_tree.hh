/**
 * @file
 * M5' model trees: recursive SDR partitioning with linear models at
 * the leaves, pruning with Quinlan's error-compensation factor, and
 * foldable smoothing — the modeling engine of the paper (Section III).
 */

#ifndef WCT_MTREE_MODEL_TREE_HH
#define WCT_MTREE_MODEL_TREE_HH

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hh"
#include "mtree/linear_model.hh"
#include "mtree/regressor.hh"

namespace wct
{

class CompiledTree;

/**
 * Which training engine ModelTree::train uses. All engines produce
 * byte-identical trees (same serialize output) for the same dataset
 * and config — pinned by the builder-equivalence property test — so
 * the choice is purely a speed/debugging knob.
 */
enum class TreeBuilderKind
{
    /**
     * Presorted; additionally parallel when the global thread pool
     * has workers (WCT_THREADS > 1). The default.
     */
    Auto,

    /**
     * Reference builder: re-sorts every attribute at every node
     * (O(A·n log n) per node). Kept as the differential baseline and
     * for the perf benchmark's speedup denominator.
     */
    Serial,

    /**
     * Presorted single-threaded builder: one stable sort per
     * attribute at the root, stable partitioning down the tree,
     * O(A·n) per node.
     */
    Presorted,

    /**
     * Presorted plus work-stealing parallelism over attributes and
     * independent subtrees (degrades to Presorted when the global
     * pool has no workers).
     */
    Parallel,
};

/** Training hyper-parameters (WEKA M5P-like defaults). */
struct ModelTreeConfig
{
    /** Training engine (speed-only knob; results are identical). */
    TreeBuilderKind builder = TreeBuilderKind::Auto;

    /** Minimum training instances per leaf (WEKA's -M). */
    std::size_t minLeafInstances = 4;

    /**
     * Additional minimum leaf size as a fraction of the training set;
     * the effective minimum is the larger of the two. Keeps trees
     * tractable on large sample sets, mirroring the paper's tuning
     * for "tractable model size" (Section IV-A).
     */
    double minLeafFraction = 0.0;

    /** Stop splitting when node sd falls below this fraction of the
     * global target sd (M5 uses 5%). */
    double sdThresholdFraction = 0.05;

    /** Maximum tree depth (safety bound). */
    std::size_t maxDepth = 32;

    /** Prune subtrees whose linear model does as well (M5 pruning). */
    bool prune = true;

    /** Fold path smoothing into the leaf models (WEKA smoothing). */
    bool smooth = true;

    /** Smoothing constant k. */
    double smoothingK = 15.0;

    /** Greedy attribute elimination in leaf models. */
    bool simplifyModels = true;

    /**
     * Clamp predictions to the training target range (with a small
     * margin). Leaf linear models can extrapolate badly far outside
     * the region they were fitted on; clamping bounds the damage for
     * out-of-distribution inputs (e.g., cross-suite application).
     */
    bool clampPredictions = true;

    /**
     * Constant-value leaves instead of linear models: turns the
     * learner into a CART-style regression tree (baseline).
     */
    bool constantLeaves = false;
};

/** Read-only description of one leaf (one "LMi" of the paper). */
struct LeafInfo
{
    /** 1-based leaf number in left-to-right order (LM1, LM2, ...). */
    std::size_t number = 0;

    /** Training samples classified into this leaf. */
    std::size_t count = 0;

    /** Share of the training samples (0..1). */
    double fraction = 0.0;

    /** Mean target (avg CPI) of the leaf's training samples. */
    double meanTarget = 0.0;

    /** The (smoothed, simplified) linear model. */
    LinearModel model;
};

/** One split condition on the path to a leaf. */
struct SplitCondition
{
    std::size_t attribute = 0;
    double value = 0.0;
    bool lessOrEqual = true; ///< direction taken
};

/** An M5' model tree. */
class ModelTree : public Regressor
{
  public:
    ModelTree() = default;

    /**
     * Train a tree predicting `target` from every other column.
     * Fatal on an empty dataset or unknown target (user input).
     */
    static ModelTree train(const Dataset &data,
                           const std::string &target,
                           const ModelTreeConfig &config = {});

    // Regressor interface. predict() is the interpreted reference
    // walk (the differential oracle the compiled form is pinned
    // against); predictAll() routes whole datasets through the
    // compiled evaluator in parallel blocks.
    double predict(std::span<const double> row) const override;
    std::vector<double> predictAll(const Dataset &data) const override;
    const std::string &targetName() const override { return target_; }
    const std::vector<std::string> &schema() const override
    {
        return schema_;
    }

    /**
     * Index (0-based) of the leaf a row falls into; leaf k has number
     * k + 1 in printed output.
     */
    std::size_t classify(std::span<const double> row) const;

    /** Classify every row of a dataset with the training schema. */
    std::vector<std::size_t> classifyAll(const Dataset &data) const;

    /** Number of leaves (linear models). */
    std::size_t numLeaves() const { return leaves_.size(); }

    /** Leaf metadata in numbering order. */
    const std::vector<LeafInfo> &leaves() const { return leaves_; }

    /** Split conditions on the path to leaf `index`. */
    std::vector<SplitCondition> leafPath(std::size_t index) const;

    /** Count of interior split nodes. */
    std::size_t numSplits() const;

    /** Columns used as split variables anywhere in the tree. */
    std::vector<std::size_t> splitAttributes() const;

    /** Paper-style indented rendering with the LM equations. */
    std::string describe() const;

    /** Graphviz rendering (ovals for splits, boxes for leaves). */
    std::string toDot() const;

    /** Training-time global target standard deviation. */
    double globalTargetStddev() const { return globalSd_; }

    /** Serialize to the text format of mtree/serialize.hh. */
    void save(std::ostream &out) const;

    /** Rebuild a tree written by save(); fatal on malformed input. */
    static ModelTree load(std::istream &in);

    /**
     * Non-fatal variant of load() for callers that must survive bad
     * input (the model-serving registry): returns nullopt and fills
     * `err` instead of terminating. load() delegates here.
     */
    static std::optional<ModelTree> tryLoad(std::istream &in,
                                            std::string *err);

    /**
     * The flattened branch-free evaluation form, built once when the
     * tree is trained or (re)loaded and cached alongside the
     * interpreted tree — so serving hot-reload rebuilds it on every
     * model swap for free. Bit-identical to predict()/classify() per
     * row (see mtree/compiled_tree.hh).
     */
    const CompiledTree &compiled() const;

    /** Shared handle to the compiled form (outlives this tree). */
    std::shared_ptr<const CompiledTree> compiledShared() const
    {
        return compiled_;
    }

  private:
    struct Node
    {
        // Interior.
        bool isLeaf = true;
        std::size_t splitAttr = 0;
        double splitValue = 0.0;
        std::unique_ptr<Node> left;  ///< rows with attr <= value
        std::unique_ptr<Node> right; ///< rows with attr > value

        // Shared.
        std::size_t count = 0;
        double meanTarget = 0.0;
        double sd = 0.0;
        LinearModel model;    ///< node model (leaf: final model)
        double adjustedError = 0.0;
        std::size_t leafIndex = 0; ///< 0-based, leaves only

        /** Training row indices (dropped once training completes). */
        std::vector<std::size_t> rows;
    };

    class Builder;
    friend class CompiledTree; ///< compile() walks root_/leafNodes_

    const Node *descend(std::span<const double> row) const;

    /** Post-build step shared by train() and tryLoad(): number the
     * leaves, then lower the tree into its compiled form. */
    void finalize();
    void collectLeaves(Node *node);
    void describeNode(const Node *node, int depth,
                      std::string &out) const;

    std::unique_ptr<Node> root_;
    double targetMin_ = 0.0;
    double targetMax_ = 0.0;
    std::vector<Node *> leafNodes_; ///< in numbering order
    std::vector<LeafInfo> leaves_;
    std::string target_;
    std::size_t targetColumn_ = 0;
    std::vector<std::string> schema_;
    double globalSd_ = 0.0;
    ModelTreeConfig config_;
    std::shared_ptr<const CompiledTree> compiled_;
};

} // namespace wct

#endif // WCT_MTREE_MODEL_TREE_HH
