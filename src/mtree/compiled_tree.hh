/**
 * @file
 * Flattened, pointer-free evaluation form of a trained M5' model
 * tree — the serving hot path's answer to pointer-chasing descent.
 *
 * ModelTree::predict walks heap-allocated Node objects one row at a
 * time: every level is a dependent load from wherever the allocator
 * put the child, and a served Predict request pays that walk twice
 * (classify + predict). A CompiledTree lowers the same tree into
 * contiguous arrays once, at train/load time:
 *
 *   - interior nodes in breadth-first order (attribute index,
 *     threshold, left/right child indices), so a level-synchronous
 *     descent touches one compact index range per level;
 *   - leaves as self-looping sentinel nodes (left == right == self),
 *     so a batch can sweep exactly depth() levels with a branch-free
 *     select per row — rows that reached a leaf early just spin in
 *     place, and the inner loop over a tile of rows has no
 *     data-dependent branches for the compiler to mispredict;
 *   - leaf OLS models as dense coefficient rows in one CSR-style
 *     (offsets / attribute / coefficient) triple, evaluated in the
 *     exact term order the sparse LinearModel stores.
 *
 * Bit-exactness contract: for every row, predict() and classify()
 * return byte-identical results to the interpreted ModelTree. Every
 * floating-point operation is replicated in the same order with the
 * same operands — the `value <= threshold` descent compare, the
 * term-order coefficient sum, and the final std::clamp against the
 * training-range bounds — so compiled serving, training-side
 * evaluation, and the differential property suite can swap forms
 * freely. The property test compiled_tree_prop_test and the
 * fuzz_tree_text harness pin this contract.
 *
 * Thread-safety: a CompiledTree is immutable after compile(); any
 * number of threads may evaluate concurrently. Batch entry points
 * write only caller-provided slots, so parallel callers partition
 * outputs by row range and results are byte-deterministic at any
 * WCT_THREADS (see docs/performance.md, "Compiled evaluation").
 */

#ifndef WCT_MTREE_COMPILED_TREE_HH
#define WCT_MTREE_COMPILED_TREE_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wct
{

class ModelTree;

/**
 * Version of the flattened layout (node arrays + CSR leaf models).
 * Bumped when the in-memory form or its evaluation semantics change;
 * `wct version` reports it so compiled-form compatibility is
 * diagnosable from the CLI.
 */
constexpr int kCompiledTreeLayoutVersion = 1;

/** Flattened branch-free tree evaluator; see file comment. */
class CompiledTree
{
  public:
    /**
     * Rows per descent tile of the batch entry points. Sized so the
     * per-tile node-index buffer stays in L1 alongside a tile of
     * narrow rows; tiling is invisible in the results (every row is
     * evaluated independently).
     */
    static constexpr std::size_t kBlockRows = 256;

    CompiledTree() = default;

    /**
     * Lower a trained (or deserialized) tree. Fatal on an untrained
     * tree; accepts any tree the text parser accepts, including
     * degenerate deep chains (iterative, no recursion).
     */
    static CompiledTree compile(const ModelTree &tree);

    /** Interior + leaf entries of the flattened node arrays. */
    std::size_t numNodes() const { return thresholds_.size(); }

    /** Leaf (linear model) count; equals the source tree's. */
    std::size_t numLeaves() const { return leafIntercepts_.size(); }

    /** Arity of the rows this tree evaluates (training schema). */
    std::size_t numColumns() const { return columns_; }

    /** Levels a full descent sweeps (0 for a single-leaf tree). */
    std::size_t depth() const { return depth_; }

    /** Whether predictions clamp to the training target range. */
    bool clampsPredictions() const { return clamp_; }

    /**
     * Predict one row (bit-identical to ModelTree::predict). The row
     * must have numColumns() cells.
     */
    double predict(std::span<const double> row) const;

    /** 0-based leaf index of one row (== ModelTree::classify). */
    std::size_t classify(std::span<const double> row) const;

    /**
     * Evaluate `n` row-major rows starting at `rows` (stride doubles
     * apart, stride >= numColumns()). Writes cpi[i] (when non-null)
     * and 0-based leaf[i] (when non-null) for row i; one descent per
     * row serves both outputs. Either output may be null, not both.
     */
    void evaluateBlock(const double *rows, std::size_t stride,
                       std::size_t n, double *cpi,
                       std::uint32_t *leaf) const;

  private:
    /** Leaf model + clamp, in LinearModel::predict's exact order. */
    double leafValue(std::uint32_t leaf, const double *row) const;

    /** Sentinel in leafOf_ marking an interior node. */
    static constexpr std::uint32_t kInterior = 0xffffffffu;

    std::uint32_t columns_ = 0;
    std::uint32_t depth_ = 0;
    bool clamp_ = false;
    double clampLo_ = 0.0;
    double clampHi_ = 0.0;

    // Flattened nodes, breadth-first, root at index 0. Leaves are
    // self-loops (left_[i] == right_[i] == i) so a fixed-depth sweep
    // parks every row on its leaf.
    std::vector<std::uint32_t> attrs_;
    std::vector<double> thresholds_;
    std::vector<std::uint32_t> left_;
    std::vector<std::uint32_t> right_;
    std::vector<std::uint32_t> leafOf_; ///< leaf index or kInterior

    // Leaf models: intercepts plus CSR (offsets/attr/coef) terms in
    // stored sparse order — the order LinearModel::predict sums in.
    std::vector<double> leafIntercepts_;
    std::vector<std::uint32_t> termOffsets_; ///< numLeaves() + 1
    std::vector<std::uint32_t> termAttrs_;
    std::vector<double> termCoefs_;
};

} // namespace wct

#endif // WCT_MTREE_COMPILED_TREE_HH
