#include "pmu/events.hh"

#include "util/logging.hh"

namespace wct
{

const std::array<EventInfo, kNumEvents> &
eventTable()
{
    static const std::array<EventInfo, kNumEvents> table = {{
        {Event::Cycles, "Cycles", "CPU_CLK_UNHALTED.CORE",
         "CPU core clock cycles", true},
        {Event::Instructions, "Inst", "INST_RETIRED.ANY",
         "Retired instructions", true},
        {Event::CyclesRef, "CyclesRef", "CPU_CLK_UNHALTED.REF",
         "Reference clock cycles", true},
        {Event::Load, "Load", "INST_RETIRED.LOADS",
         "Retired loads", false},
        {Event::Store, "Store", "INST_RETIRED.STORES",
         "Retired stores", false},
        {Event::BrMispred, "MisprBr", "BR_INST_RETIRED.MISPRED",
         "Mispredicted branches", false},
        {Event::Br, "Br", "BR_INST_RETIRED.ANY",
         "Retired branches", false},
        {Event::L1DMiss, "L1DMiss", "MEM_LOAD_RETIRED.L1D_MISS",
         "L1 data cache misses", false},
        {Event::L1IMiss, "L1IMiss", "L1I_MISSES",
         "L1 instruction cache misses", false},
        {Event::L2Miss, "L2Miss", "MEM_LOAD_RETIRED.L2_MISS",
         "L2 cache misses", false},
        {Event::DtlbMiss, "DtlbMiss", "DTLB_MISSES.ANY",
         "Last-level DTLB misses", false},
        {Event::LdBlkSta, "LdBlkStA", "LOAD_BLOCK.STA",
         "Loads blocked by unknown store address", false},
        {Event::LdBlkStd, "LdBlkStD", "LOAD_BLOCK.STD",
         "Loads blocked by unready store data", false},
        {Event::LdBlkOlp, "LdBlkOlp", "LOAD_BLOCK.OVERLAP_STORE",
         "Loads blocked by a partially overlapping or aliased store",
         false},
        {Event::SplitLoad, "SplitLoad", "L1D_SPLIT.LOADS",
         "Loads split across cache lines", false},
        {Event::SplitStore, "SplitStore", "L1D_SPLIT.STORES",
         "Stores split across cache lines", false},
        {Event::Misalign, "Misalign", "MISALIGN_MEM_REF",
         "Misaligned memory references", false},
        {Event::Div, "Div", "DIV", "Divide operations", false},
        {Event::PageWalk, "PageWalk", "PAGE_WALKS.COUNT",
         "Hardware page walks", false},
        {Event::Mul, "Mul", "MUL", "Multiply operations", false},
        {Event::FpAssist, "FpAsst", "FP_ASSIST",
         "Floating point assists", false},
        {Event::Simd, "SIMD", "SIMD_INST_RETIRED.ANY",
         "Retired streaming SIMD instructions", false},
    }};
    return table;
}

const EventInfo &
eventInfo(Event e)
{
    const auto idx = static_cast<std::size_t>(e);
    wct_assert(idx < kNumEvents, "bad event id ", idx);
    const EventInfo &info = eventTable()[idx];
    wct_assert(info.event == e, "event table out of order at ", idx);
    return info;
}

const char *
eventShortName(Event e)
{
    return eventInfo(e).shortName;
}

Event
eventFromShortName(const std::string &name)
{
    for (const EventInfo &info : eventTable())
        if (name == info.shortName)
            return info.event;
    wct_fatal("unknown event short name '", name, "'");
}

std::vector<std::string>
metricColumnNames()
{
    std::vector<std::string> names;
    names.reserve(kNumEvents - kFirstMultiplexedEvent + 1);
    names.emplace_back("CPI");
    for (std::size_t i = kFirstMultiplexedEvent; i < kNumEvents; ++i)
        names.emplace_back(eventTable()[i].shortName);
    return names;
}

} // namespace wct
