/**
 * @file
 * The performance-event taxonomy of Table I.
 *
 * The paper predicts CPI from per-instruction densities of the other
 * PMU events collected on a Core 2 processor. Three events have
 * dedicated hardware counters (core cycles, retired instructions,
 * reference cycles); the rest share two programmable counters through
 * round-robin multiplexing.
 */

#ifndef WCT_PMU_EVENTS_HH
#define WCT_PMU_EVENTS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace wct
{

/** Every event the simulated PMU can count. */
enum class Event : std::uint8_t
{
    // Events with dedicated counters.
    Cycles,       ///< CPU_CLK_UNHALTED.CORE
    Instructions, ///< INST_RETIRED.ANY
    CyclesRef,    ///< CPU_CLK_UNHALTED.REF

    // Events multiplexed over the two programmable counters.
    Load,       ///< INST_RETIRED.LOADS
    Store,      ///< INST_RETIRED.STORES
    BrMispred,  ///< BR_INST_RETIRED.MISPRED
    Br,         ///< BR_INST_RETIRED.ANY
    L1DMiss,    ///< MEM_LOAD_RETIRED.L1D_MISS
    L1IMiss,    ///< L1I_MISSES
    L2Miss,     ///< MEM_LOAD_RETIRED.L2_MISS
    DtlbMiss,   ///< DTLB_MISSES.ANY
    LdBlkSta,   ///< LOAD_BLOCK.STA
    LdBlkStd,   ///< LOAD_BLOCK.STD
    LdBlkOlp,   ///< LOAD_BLOCK.OVERLAP_STORE
    SplitLoad,  ///< L1D_SPLIT.LOADS
    SplitStore, ///< L1D_SPLIT.STORES
    Misalign,   ///< MISALIGN_MEM_REF
    Div,        ///< DIV
    PageWalk,   ///< PAGE_WALKS.COUNT
    Mul,        ///< MUL
    FpAssist,   ///< FP_ASSIST
    Simd,       ///< SIMD_INST_RETIRED.ANY

    NumEvents
};

/** Number of distinct events. */
constexpr std::size_t kNumEvents =
    static_cast<std::size_t>(Event::NumEvents);

/** Index of the first multiplexed (programmable-counter) event. */
constexpr std::size_t kFirstMultiplexedEvent =
    static_cast<std::size_t>(Event::Load);

/** Static description of one event (one row of Table I). */
struct EventInfo
{
    Event event;
    const char *shortName;   ///< Metric name used in models ("DtlbMiss")
    const char *pmuName;     ///< Hardware event name
    const char *description; ///< Human-readable meaning
    bool dedicated;          ///< Owns a fixed counter
};

/** Table I: every event with its naming and counter assignment. */
const std::array<EventInfo, kNumEvents> &eventTable();

/** Lookup of one event's static description. */
const EventInfo &eventInfo(Event e);

/** Short metric name for an event ("CPI" uses cyclesToCpi instead). */
const char *eventShortName(Event e);

/** Parse a short metric name back to an event; fatal when unknown. */
Event eventFromShortName(const std::string &name);

/**
 * Names of the per-instruction metric columns in modeling datasets:
 * "CPI" first, then the multiplexed events in Table I order.
 */
std::vector<std::string> metricColumnNames();

/** Plain array of per-event counts. */
using EventCounts = std::array<std::uint64_t, kNumEvents>;

/** Zero all counts. */
inline void
clearCounts(EventCounts &counts)
{
    counts.fill(0);
}

/** counts[e] += n without the cast noise at call sites. */
inline void
bump(EventCounts &counts, Event e, std::uint64_t n = 1)
{
    counts[static_cast<std::size_t>(e)] += n;
}

/** Read one event count. */
inline std::uint64_t
countOf(const EventCounts &counts, Event e)
{
    return counts[static_cast<std::size_t>(e)];
}

} // namespace wct

#endif // WCT_PMU_EVENTS_HH
