#include "pmu/collector.hh"

#include <algorithm>
#include <array>

#include "util/logging.hh"

namespace wct
{

IntervalCollector::IntervalCollector(CoreModel &core,
                                     const CollectorConfig &config)
    : core_(core), config_(config)
{
    wct_assert(config.intervalInstructions > 0,
               "interval must cover at least one instruction");
    wct_assert(config.programmableCounters > 0,
               "need at least one programmable counter");

    // Build the multiplexing groups over the non-dedicated events.
    std::vector<Event> multiplexed;
    for (std::size_t i = kFirstMultiplexedEvent; i < kNumEvents; ++i)
        multiplexed.push_back(static_cast<Event>(i));
    for (std::size_t i = 0; i < multiplexed.size();
         i += config.programmableCounters) {
        std::vector<Event> group;
        for (std::size_t j = i;
             j < std::min(i + config.programmableCounters,
                          multiplexed.size());
             ++j) {
            group.push_back(multiplexed[j]);
        }
        groups_.push_back(std::move(group));
    }
    wct_assert(config.intervalInstructions >= groups_.size(),
               "interval of ", config.intervalInstructions,
               " instructions cannot fit ", groups_.size(),
               " multiplexing sub-windows");
    rotation_ = config.initialRotation % groups_.size();
}

std::vector<double>
IntervalCollector::collectInterval(InstSource &source)
{
    core_.resetCounts();

    // Per-event full-interval estimates, accumulated in double all
    // the way to the densities: casting each sub-window's scaled
    // count to an integer (the old per-group round) quantized every
    // estimate by up to half a count over `duty`, a systematic bias
    // for any event whose scaled count is not integral.
    std::array<double, kNumEvents> estimated{};

    if (!config_.multiplexed) {
        core_.run(source, config_.intervalInstructions);
        const EventCounts &counts = core_.counts();
        for (std::size_t i = 0; i < kNumEvents; ++i)
            estimated[i] = static_cast<double>(counts[i]);
    } else {
        const std::size_t num_groups = groups_.size();
        const std::uint64_t base =
            config_.intervalInstructions / num_groups;
        std::uint64_t remaining = config_.intervalInstructions;
        EventCounts before = core_.counts();

        for (std::size_t g = 0; g < num_groups; ++g) {
            // The last sub-window absorbs the rounding remainder.
            const std::uint64_t width =
                g + 1 == num_groups ? remaining : base;
            remaining -= width;
            core_.run(source, width);
            const EventCounts &after = core_.counts();

            const auto &group =
                groups_[(g + rotation_) % num_groups];
            for (Event e : group) {
                const auto idx = static_cast<std::size_t>(e);
                const std::uint64_t delta = after[idx] - before[idx];
                // Scale the sub-window observation to the interval.
                const double duty = static_cast<double>(width) /
                    static_cast<double>(config_.intervalInstructions);
                estimated[idx] += static_cast<double>(delta) / duty;
            }
            before = after;
        }
        // Advance the rotation so each event visits every sub-window
        // position over consecutive intervals, as on real hardware.
        rotation_ = (rotation_ + 1) % num_groups;

        // Dedicated counters always observe the full interval.
        for (Event e : {Event::Cycles, Event::Instructions,
                        Event::CyclesRef}) {
            const auto idx = static_cast<std::size_t>(e);
            estimated[idx] =
                static_cast<double>(core_.counts()[idx]);
        }
    }

    const double instructions =
        estimated[static_cast<std::size_t>(Event::Instructions)];
    wct_assert(instructions > 0.0, "interval retired no instructions");

    std::vector<double> row;
    row.reserve(kNumEvents - kFirstMultiplexedEvent + 1);
    row.push_back(core_.cycles() / instructions); // CPI
    for (std::size_t i = kFirstMultiplexedEvent; i < kNumEvents; ++i) {
        row.push_back(estimated[i] / instructions);
    }
    return row;
}

Dataset
IntervalCollector::collect(InstSource &source, std::size_t intervals)
{
    Dataset data(metricColumnNames());
    data.reserveRows(intervals);
    for (std::size_t i = 0; i < intervals; ++i)
        data.addRow(collectInterval(source));
    return data;
}

} // namespace wct
