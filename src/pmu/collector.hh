/**
 * @file
 * Interval-based PMU sample collection, reproducing the measurement
 * methodology of Section III.
 *
 * The simulated PMU has five counters: three dedicated to core cycles,
 * retired instructions, and reference cycles, plus two programmable
 * counters that are round-robin multiplexed over the remaining Table I
 * events. Within each fixed-length instruction interval, the interval
 * is divided into as many equal sub-windows as there are event groups;
 * each group is counted in one sub-window and scaled by the duty
 * factor to estimate its full-interval count. Counts are normalised
 * by the interval's instruction count into per-instruction densities.
 *
 * An exact mode (no multiplexing) is provided for testing and for
 * quantifying the sampling noise multiplexing introduces.
 */

#ifndef WCT_PMU_COLLECTOR_HH
#define WCT_PMU_COLLECTOR_HH

#include <cstdint>
#include <vector>

#include "data/dataset.hh"
#include "pmu/events.hh"
#include "uarch/core.hh"
#include "uarch/types.hh"

namespace wct
{

/** Sampling configuration. */
struct CollectorConfig
{
    /**
     * Instructions per sample (the paper's multiplexing interval of
     * 2 M instructions, scaled down by default so full-suite
     * collection stays laptop-sized; densities are normalised so the
     * models are insensitive to the absolute width).
     */
    std::uint64_t intervalInstructions = 4096;

    /** Round-robin multiplexing on, or exact whole-interval counts. */
    bool multiplexed = true;

    /** Number of programmable counters. */
    std::uint32_t programmableCounters = 2;

    /**
     * Starting offset of the round-robin rotation schedule (taken
     * modulo the group count). Shard s of a sharded collection sets
     * this to its first global interval index so the multiplexing
     * schedule lines up with the sequential schedule positions.
     */
    std::size_t initialRotation = 0;
};

/**
 * Drives a core over an instruction source and produces per-interval
 * metric rows (CPI plus per-instruction event densities).
 */
class IntervalCollector
{
  public:
    /**
     * @param core   The machine under measurement (state persists
     *               across intervals, like real hardware).
     * @param config Sampling parameters.
     */
    IntervalCollector(CoreModel &core, const CollectorConfig &config);

    /**
     * Run one interval and return the metric row in
     * metricColumnNames() order: CPI, then event densities.
     */
    std::vector<double> collectInterval(InstSource &source);

    /** Collect a dataset of consecutive intervals. */
    Dataset collect(InstSource &source, std::size_t intervals);

    /** The event groups in rotation order (exposed for testing). */
    const std::vector<std::vector<Event>> &groups() const
    {
        return groups_;
    }

    const CollectorConfig &config() const { return config_; }

  private:
    CoreModel &core_;
    CollectorConfig config_;
    std::vector<std::vector<Event>> groups_;

    /** Rotation offset so the schedule advances across intervals. */
    std::size_t rotation_ = 0;
};

} // namespace wct

#endif // WCT_PMU_COLLECTOR_HH
