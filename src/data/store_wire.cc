#include "data/store_wire.hh"

#include <sstream>

namespace wct
{

namespace
{

std::string_view
storeMagic()
{
    return std::string_view(kStoreWireMagic, 8);
}

bool
fail(std::string *err, const char *reason)
{
    if (err != nullptr)
        *err = reason;
    return false;
}

bool
validOp(std::uint8_t raw)
{
    return raw >= static_cast<std::uint8_t>(StoreOp::Load) &&
           raw <= static_cast<std::uint8_t>(StoreOp::Remove);
}

/** Parse `kind:str key:u64` with the kind validated at the trust
 * boundary: a hostile kind must never become a file-name component
 * on either end of the connection. */
bool
parseArtifactId(ByteParser &parser, ArtifactId &id, std::string *err)
{
    if (!parser.getString(id.kind) || !parser.getU64(id.key))
        return fail(err, "truncated artifact id");
    if (!validArtifactKind(id.kind))
        return fail(err, "invalid artifact kind");
    return true;
}

void
appendArtifactId(ByteSink &sink, const ArtifactId &id)
{
    sink.putString(id.kind);
    sink.putU64(id.key);
}

/** Smallest possible wire footprint of one artifact id:
 * u64 string length + u64 key (an empty kind is invalid but still
 * occupies these 16 bytes). Claimed element counts are checked
 * against remaining()/this before any container is sized. */
constexpr std::size_t kMinIdBytes = 16;

} // namespace

const char *
storeOpName(StoreOp op)
{
    switch (op) {
    case StoreOp::Load:
        return "load";
    case StoreOp::Store:
        return "store";
    case StoreOp::Stat:
        return "stat";
    case StoreOp::List:
        return "list";
    case StoreOp::Gc:
        return "gc";
    case StoreOp::Ping:
        return "ping";
    case StoreOp::Shutdown:
        return "shutdown";
    case StoreOp::Remove:
        return "remove";
    }
    return "unknown";
}

const char *
storeStatusName(StoreStatus status)
{
    switch (status) {
    case StoreStatus::Ok:
        return "ok";
    case StoreStatus::Error:
        return "error";
    case StoreStatus::NotFound:
        return "not-found";
    case StoreStatus::ShuttingDown:
        return "shutting-down";
    case StoreStatus::MalformedFrame:
        return "malformed-frame";
    }
    return "unknown";
}

std::string
encodeStoreRequest(const StoreRequest &request)
{
    ByteSink sink;
    sink.putU8(static_cast<std::uint8_t>(request.op));
    sink.putU64(request.id);
    switch (request.op) {
    case StoreOp::Load:
    case StoreOp::Stat:
    case StoreOp::Remove:
        appendArtifactId(sink, request.artifact);
        break;
    case StoreOp::Store:
        appendArtifactId(sink, request.artifact);
        sink.putString(request.payload);
        break;
    case StoreOp::Gc:
        sink.putU64(request.graceSeconds);
        sink.putU64(request.live.size());
        for (const ArtifactId &id : request.live)
            appendArtifactId(sink, id);
        break;
    case StoreOp::List:
    case StoreOp::Ping:
    case StoreOp::Shutdown:
        break;
    }
    std::ostringstream out;
    writeEnvelope(out, storeMagic(), kStoreWireFormatVersion,
                  sink.bytes());
    return out.str();
}

std::string
encodeStoreResponse(const StoreResponse &response)
{
    ByteSink sink;
    sink.putU8(static_cast<std::uint8_t>(response.op));
    sink.putU64(response.id);
    sink.putU8(static_cast<std::uint8_t>(response.status));
    if (response.status != StoreStatus::Ok) {
        sink.putString(response.error);
    } else {
        switch (response.op) {
        case StoreOp::Load:
            sink.putString(response.payload);
            break;
        case StoreOp::Stat:
            sink.putU64(response.fileBytes);
            break;
        case StoreOp::List:
            sink.putU64(response.artifacts.size());
            for (const ArtifactInfo &info : response.artifacts) {
                appendArtifactId(sink, info.id);
                sink.putU64(info.fileBytes);
            }
            break;
        case StoreOp::Gc:
            sink.putU64(response.removed.size());
            for (const ArtifactId &id : response.removed)
                appendArtifactId(sink, id);
            break;
        case StoreOp::Store:
        case StoreOp::Ping:
        case StoreOp::Shutdown:
        case StoreOp::Remove:
            break;
        }
    }
    std::ostringstream out;
    writeEnvelope(out, storeMagic(), kStoreWireFormatVersion,
                  sink.bytes());
    return out.str();
}

std::optional<StoreRequest>
decodeStoreRequest(std::string_view payload, std::string *err)
{
    ByteParser parser(payload);
    std::uint8_t op = 0;
    StoreRequest request;
    if (!parser.getU8(op) || !parser.getU64(request.id)) {
        fail(err, "truncated request header");
        return std::nullopt;
    }
    if (!validOp(op)) {
        fail(err, "unknown opcode");
        return std::nullopt;
    }
    request.op = static_cast<StoreOp>(op);

    switch (request.op) {
    case StoreOp::Load:
    case StoreOp::Stat:
    case StoreOp::Remove:
        if (!parseArtifactId(parser, request.artifact, err))
            return std::nullopt;
        break;
    case StoreOp::Store:
        if (!parseArtifactId(parser, request.artifact, err))
            return std::nullopt;
        if (!parser.getString(request.payload)) {
            fail(err, "truncated store payload");
            return std::nullopt;
        }
        break;
    case StoreOp::Gc: {
        std::uint64_t count = 0;
        if (!parser.getU64(request.graceSeconds) ||
            !parser.getU64(count)) {
            fail(err, "truncated gc header");
            return std::nullopt;
        }
        if (count > parser.remaining() / kMinIdBytes) {
            fail(err, "gc live-set count exceeds frame size");
            return std::nullopt;
        }
        request.live.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            ArtifactId id;
            if (!parseArtifactId(parser, id, err))
                return std::nullopt;
            request.live.push_back(std::move(id));
        }
        break;
    }
    case StoreOp::List:
    case StoreOp::Ping:
    case StoreOp::Shutdown:
        break;
    }
    if (!parser.atEnd()) {
        fail(err, "trailing bytes after request body");
        return std::nullopt;
    }
    return request;
}

std::optional<StoreResponse>
decodeStoreResponse(std::string_view payload, std::string *err)
{
    ByteParser parser(payload);
    std::uint8_t op = 0;
    std::uint8_t status = 0;
    StoreResponse response;
    if (!parser.getU8(op) || !parser.getU64(response.id) ||
        !parser.getU8(status)) {
        fail(err, "truncated response header");
        return std::nullopt;
    }
    if (!validOp(op)) {
        fail(err, "unknown opcode");
        return std::nullopt;
    }
    if (status >
        static_cast<std::uint8_t>(StoreStatus::MalformedFrame)) {
        fail(err, "unknown status");
        return std::nullopt;
    }
    response.op = static_cast<StoreOp>(op);
    response.status = static_cast<StoreStatus>(status);

    if (response.status != StoreStatus::Ok) {
        if (!parser.getString(response.error) || !parser.atEnd()) {
            fail(err, "malformed error response");
            return std::nullopt;
        }
        return response;
    }

    switch (response.op) {
    case StoreOp::Load:
        if (!parser.getString(response.payload)) {
            fail(err, "truncated load payload");
            return std::nullopt;
        }
        break;
    case StoreOp::Stat:
        if (!parser.getU64(response.fileBytes)) {
            fail(err, "truncated stat body");
            return std::nullopt;
        }
        break;
    case StoreOp::List: {
        std::uint64_t count = 0;
        if (!parser.getU64(count)) {
            fail(err, "truncated list header");
            return std::nullopt;
        }
        // kind-length + key + fileBytes per entry, checked before
        // sizing the vector.
        if (count > parser.remaining() / (kMinIdBytes + 8)) {
            fail(err, "list count exceeds frame size");
            return std::nullopt;
        }
        response.artifacts.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            ArtifactInfo info;
            if (!parseArtifactId(parser, info.id, err))
                return std::nullopt;
            std::uint64_t bytes = 0;
            if (!parser.getU64(bytes)) {
                fail(err, "truncated list entry");
                return std::nullopt;
            }
            info.fileBytes = bytes;
            response.artifacts.push_back(std::move(info));
        }
        break;
    }
    case StoreOp::Gc: {
        std::uint64_t count = 0;
        if (!parser.getU64(count)) {
            fail(err, "truncated gc header");
            return std::nullopt;
        }
        if (count > parser.remaining() / kMinIdBytes) {
            fail(err, "gc removed count exceeds frame size");
            return std::nullopt;
        }
        response.removed.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            ArtifactId id;
            if (!parseArtifactId(parser, id, err))
                return std::nullopt;
            response.removed.push_back(std::move(id));
        }
        break;
    }
    case StoreOp::Store:
    case StoreOp::Ping:
    case StoreOp::Shutdown:
    case StoreOp::Remove:
        break;
    }
    if (!parser.atEnd()) {
        fail(err, "trailing bytes after response body");
        return std::nullopt;
    }
    return response;
}

std::optional<std::string>
readStoreFrame(std::istream &in)
{
    return readEnvelope(in, storeMagic(), kStoreWireFormatVersion,
                        kMaxStoreFramePayload);
}

void
writeStoreFrame(std::ostream &out, std::string_view frame)
{
    out.write(frame.data(),
              static_cast<std::streamsize>(frame.size()));
    out.flush();
}

} // namespace wct
