/**
 * @file
 * Content-addressed artifact store: the one cache behind the staged
 * pipeline (src/pipeline), the CLI cache commands, and the serving
 * model registry.
 *
 * Every cached intermediate — collected per-shard samples, trained
 * model trees, classified profile tables, similarity matrices,
 * transferability reports — is one *artifact*: a binary-envelope file
 * (data/binary_io layout, FNV-1a checksummed) addressed by a `kind`
 * string plus a 64-bit content key. Keys are derived exclusively
 * through KeyBuilder, the single key-derivation implementation in the
 * tree: canonical little-endian encodings of every stage input are
 * hashed with FNV-1a, so two runs share an artifact iff they would
 * compute identical bytes. (PR 3's collect_cache and PR 4's
 * ModelRegistry each had a private copy of this scheme; both now go
 * through here.)
 *
 * ArtifactStore is a cheap copyable handle over a StoreBackend. The
 * default backend is the local directory store; the remote backend
 * (data/remote_store.hh) speaks the WCTSTOR wire protocol to a
 * `wct store serve` daemon through a read-through local cache, so a
 * fleet of workers shares one warm store. Pipelines and the CLI are
 * agnostic: every backend has the same load/store/list/gc contract
 * and the same miss-means-recompute failure semantics.
 *
 * Local layout: `<dir>/<kind>-<16-hex-digit key>.wctart`. Each
 * payload is prefixed with its own (kind, key) so a renamed or
 * cross-linked file is detected as a mismatch, not silently served.
 * Corrupt, truncated, mismatched, or oversized files load as nullopt
 * with a warning — callers recompute and overwrite. Writes go through
 * a per-writer temp file plus an atomic rename, so concurrent writers
 * to the same key are safe (last rename wins with identical bytes)
 * and a crashed writer never leaves a half-written artifact under the
 * final name.
 */

#ifndef WCT_DATA_ARTIFACT_STORE_HH
#define WCT_DATA_ARTIFACT_STORE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "data/binary_io.hh"

namespace wct
{

/** Magic and version of .wctart artifact files. */
constexpr char kArtifactMagic[] = "WCTARTF"; ///< 7 chars + NUL = 8
constexpr std::uint32_t kArtifactFormatVersion = 1;

/**
 * The single key-derivation implementation: canonical little-endian
 * field encoding (exact double bit patterns — decimal formatting
 * never enters a key) hashed with FNV-1a. Every stage key, the
 * collection cache key, and the serving model content key are built
 * with this type.
 */
class KeyBuilder
{
  public:
    KeyBuilder &u8(std::uint8_t v);
    KeyBuilder &u32(std::uint32_t v);
    KeyBuilder &u64(std::uint64_t v);
    KeyBuilder &f64(double v);
    KeyBuilder &str(const std::string &s);
    KeyBuilder &bytes(std::string_view raw);

    /** FNV-1a hash of everything appended so far. */
    std::uint64_t key() const { return sink_.hash(); }

  private:
    ByteSink sink_;
};

/** Lower-case 16-hex-digit rendering of a 64-bit key. */
std::string keyHex(std::uint64_t key);

/** Parse a 16-hex-digit key; nullopt on anything else. */
std::optional<std::uint64_t> parseKeyHex(std::string_view hex);

/** Address of one artifact: what it is plus the hash of its inputs. */
struct ArtifactId
{
    std::string kind;       ///< e.g. "collect-shard", "train", "mtree"
    std::uint64_t key = 0;

    /** File name within a store: `<kind>-<16 hex>.wctart`. */
    std::string fileName() const;
};

/**
 * True for kind strings a store will accept: non-empty, at most 64
 * characters, alphanumerics plus '-' and '_'. Kinds become file-name
 * components on both the client and the daemon, so anything else —
 * path separators, '..', control bytes — is rejected at the trust
 * boundary (wire decode and local store alike).
 */
bool validArtifactKind(std::string_view kind);

/** Directory-listing entry of one stored artifact. */
struct ArtifactInfo
{
    ArtifactId id;
    std::uintmax_t fileBytes = 0;
    std::string path;
};

/**
 * One storage implementation behind an ArtifactStore handle. All
 * methods are const and must be safe to call from multiple threads
 * (collection shards store from a parallel loop); implementations
 * keep any connection or eviction state behind internal locks.
 */
class StoreBackend
{
  public:
    virtual ~StoreBackend() = default;

    /** Local directory (the read-through cache dir for remotes). */
    virtual const std::string &dir() const = 0;

    /** Final local path of an artifact (whether or not it exists). */
    virtual std::string path(const ArtifactId &id) const = 0;

    virtual bool contains(const ArtifactId &id) const = 0;
    virtual std::optional<std::string>
    load(const ArtifactId &id) const = 0;
    virtual bool store(const ArtifactId &id,
                       std::string_view payload) const = 0;
    virtual bool remove(const ArtifactId &id) const = 0;
    virtual std::vector<ArtifactInfo> list() const = 0;
    virtual std::vector<ArtifactId>
    gc(const std::vector<ArtifactId> &live,
       std::uint64_t graceSeconds) const = 0;
};

/**
 * The content-addressed store handle. Default-constructed (or
 * empty-dir) stores are *disabled*: loads always miss and stores are
 * dropped, so pipelines run uncached without special-casing. Copies
 * share the backend.
 */
class ArtifactStore
{
  public:
    /** Disabled store: every operation is a cheap no-op. */
    ArtifactStore() = default;

    /** Local directory store; an empty dir stays disabled. */
    explicit ArtifactStore(std::string dir);

    /** Adopt any backend (see data/remote_store.hh). */
    explicit ArtifactStore(std::shared_ptr<const StoreBackend> backend)
        : backend_(std::move(backend))
    {
    }

    bool enabled() const { return backend_ != nullptr; }
    const std::string &dir() const;

    /** Final path of an artifact (whether or not it exists). */
    std::string path(const ArtifactId &id) const;

    /** True when a (possibly invalid) file exists for this id. */
    bool contains(const ArtifactId &id) const;

    /**
     * Load an artifact's payload. nullopt when the store is disabled,
     * the artifact is missing, or it is corrupt / truncated /
     * oversized / recorded under a different (kind, key) — the
     * invalid cases additionally warn, and the caller is expected to
     * recompute and store() over the bad entry.
     */
    std::optional<std::string> load(const ArtifactId &id) const;

    /**
     * Store a payload under its id (atomic write-then-rename; safe
     * against concurrent writers of the same key). Returns false
     * (with a warning) on I/O failure — a failed store is a lost
     * cache entry, never a fatal error.
     */
    bool store(const ArtifactId &id, std::string_view payload) const;

    /** Delete one artifact; false when it was not present. */
    bool remove(const ArtifactId &id) const;

    /** Every artifact in the store, sorted by file name. */
    std::vector<ArtifactInfo> list() const;

    /**
     * Remove every artifact whose id is not in `live`, plus stale
     * .tmp files from crashed writers. Returns the ids removed.
     * Never touches live artifacts or non-store files.
     *
     * Liveness is computed *before* the sweep walks the directory, so
     * an artifact published in between (a worker mid-run on another
     * thread or machine) would look dead to this call. The grace
     * window closes that race: a candidate is removed only when its
     * mtime predates the start of this gc call by at least
     * `graceSeconds`. The default of 0 still protects anything
     * written after the sweep began; fleet deployments pass a wider
     * window (`wct cache gc --grace`, `wct store gc --grace`) sized
     * to their longest plan computation.
     */
    std::vector<ArtifactId> gc(const std::vector<ArtifactId> &live,
                               std::uint64_t graceSeconds = 0) const;

  private:
    std::shared_ptr<const StoreBackend> backend_;
};

} // namespace wct

#endif // WCT_DATA_ARTIFACT_STORE_HH
