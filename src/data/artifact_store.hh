/**
 * @file
 * Content-addressed artifact store: the one on-disk cache behind the
 * staged pipeline (src/pipeline), the CLI cache commands, and the
 * serving model registry.
 *
 * Every cached intermediate — collected SuiteData, trained model
 * trees, classified profile tables, similarity matrices,
 * transferability reports — is one *artifact*: a binary-envelope file
 * (data/binary_io layout, FNV-1a checksummed) addressed by a `kind`
 * string plus a 64-bit content key. Keys are derived exclusively
 * through KeyBuilder, the single key-derivation implementation in the
 * tree: canonical little-endian encodings of every stage input are
 * hashed with FNV-1a, so two runs share an artifact iff they would
 * compute identical bytes. (PR 3's collect_cache and PR 4's
 * ModelRegistry each had a private copy of this scheme; both now go
 * through here.)
 *
 * Layout: `<dir>/<kind>-<16-hex-digit key>.wctart`. Each payload is
 * prefixed with its own (kind, key) so a renamed or cross-linked file
 * is detected as a mismatch, not silently served. Corrupt, truncated,
 * mismatched, or oversized files load as nullopt with a warning —
 * callers recompute and overwrite. Writes go through a per-writer
 * temp file plus an atomic rename, so concurrent writers to the same
 * key are safe (last rename wins with identical bytes) and a crashed
 * writer never leaves a half-written artifact under the final name.
 */

#ifndef WCT_DATA_ARTIFACT_STORE_HH
#define WCT_DATA_ARTIFACT_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "data/binary_io.hh"

namespace wct
{

/** Magic and version of .wctart artifact files. */
constexpr char kArtifactMagic[] = "WCTARTF"; ///< 7 chars + NUL = 8
constexpr std::uint32_t kArtifactFormatVersion = 1;

/**
 * The single key-derivation implementation: canonical little-endian
 * field encoding (exact double bit patterns — decimal formatting
 * never enters a key) hashed with FNV-1a. Every stage key, the
 * collection cache key, and the serving model content key are built
 * with this type.
 */
class KeyBuilder
{
  public:
    KeyBuilder &u8(std::uint8_t v);
    KeyBuilder &u32(std::uint32_t v);
    KeyBuilder &u64(std::uint64_t v);
    KeyBuilder &f64(double v);
    KeyBuilder &str(const std::string &s);
    KeyBuilder &bytes(std::string_view raw);

    /** FNV-1a hash of everything appended so far. */
    std::uint64_t key() const { return sink_.hash(); }

  private:
    ByteSink sink_;
};

/** Lower-case 16-hex-digit rendering of a 64-bit key. */
std::string keyHex(std::uint64_t key);

/** Parse a 16-hex-digit key; nullopt on anything else. */
std::optional<std::uint64_t> parseKeyHex(std::string_view hex);

/** Address of one artifact: what it is plus the hash of its inputs. */
struct ArtifactId
{
    std::string kind;       ///< e.g. "collect", "train", "mtree"
    std::uint64_t key = 0;

    /** File name within a store: `<kind>-<16 hex>.wctart`. */
    std::string fileName() const;
};

/** Directory-listing entry of one stored artifact. */
struct ArtifactInfo
{
    ArtifactId id;
    std::uintmax_t fileBytes = 0;
    std::string path;
};

/**
 * The content-addressed store. Default-constructed (or empty-dir)
 * stores are *disabled*: loads always miss and stores are dropped, so
 * pipelines run uncached without special-casing.
 */
class ArtifactStore
{
  public:
    ArtifactStore() = default;
    explicit ArtifactStore(std::string dir) : dir_(std::move(dir)) {}

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Final path of an artifact (whether or not it exists). */
    std::string path(const ArtifactId &id) const;

    /** True when a (possibly invalid) file exists for this id. */
    bool contains(const ArtifactId &id) const;

    /**
     * Load an artifact's payload. nullopt when the store is disabled,
     * the file is missing, or the file is corrupt / truncated /
     * oversized / recorded under a different (kind, key) — the
     * invalid cases additionally warn, and the caller is expected to
     * recompute and store() over the bad entry.
     */
    std::optional<std::string> load(const ArtifactId &id) const;

    /**
     * Store a payload under its id (atomic write-then-rename; safe
     * against concurrent writers of the same key). Returns false
     * (with a warning) on I/O failure — a failed store is a lost
     * cache entry, never a fatal error.
     */
    bool store(const ArtifactId &id, std::string_view payload) const;

    /** Delete one artifact; false when it was not present. */
    bool remove(const ArtifactId &id) const;

    /** Every .wctart file in the store, sorted by file name. */
    std::vector<ArtifactInfo> list() const;

    /**
     * Remove every artifact whose id is not in `live`, plus stale
     * .tmp files from crashed writers. Returns the ids removed. Never
     * touches live artifacts, non-store files, or anything when the
     * store is disabled.
     */
    std::vector<ArtifactId> gc(const std::vector<ArtifactId> &live) const;

  private:
    std::string dir_;
};

} // namespace wct

#endif // WCT_DATA_ARTIFACT_STORE_HH
