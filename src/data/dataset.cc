#include "data/dataset.hh"

#include <cmath>
#include <unordered_set>

#include "util/logging.hh"

namespace wct
{

Dataset::Dataset(std::vector<std::string> column_names)
    : names_(std::move(column_names))
{
    wct_assert(!names_.empty(), "dataset needs at least one column");
    std::unordered_set<std::string> seen;
    for (const auto &name : names_) {
        wct_assert(!name.empty(), "empty column name");
        wct_assert(seen.insert(name).second,
                   "duplicate column name '", name, "'");
    }
}

bool
Dataset::hasColumn(const std::string &name) const
{
    for (const auto &candidate : names_)
        if (candidate == name)
            return true;
    return false;
}

std::size_t
Dataset::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return i;
    wct_fatal("dataset has no column named '", name, "'");
}

void
Dataset::addRow(const std::vector<double> &row)
{
    addRow(std::span<const double>(row.data(), row.size()));
}

void
Dataset::addRow(std::span<const double> row)
{
    wct_assert(row.size() == names_.size(),
               "row arity ", row.size(), " != schema arity ",
               names_.size());
    values_.insert(values_.end(), row.begin(), row.end());
}

double
Dataset::at(std::size_t row, std::size_t col) const
{
    wct_assert(row < numRows() && col < numColumns(),
               "out of range cell (", row, ", ", col, ")");
    return values_[row * names_.size() + col];
}

double &
Dataset::at(std::size_t row, std::size_t col)
{
    wct_assert(row < numRows() && col < numColumns(),
               "out of range cell (", row, ", ", col, ")");
    return values_[row * names_.size() + col];
}

std::span<const double>
Dataset::row(std::size_t r) const
{
    wct_assert(r < numRows(), "out of range row ", r);
    return {values_.data() + r * names_.size(), names_.size()};
}

std::vector<double>
Dataset::column(std::size_t c) const
{
    wct_assert(c < numColumns(), "out of range column ", c);
    std::vector<double> out;
    out.reserve(numRows());
    for (std::size_t r = 0; r < numRows(); ++r)
        out.push_back(values_[r * names_.size() + c]);
    return out;
}

std::vector<double>
Dataset::column(const std::string &name) const
{
    return column(columnIndex(name));
}

Dataset
Dataset::selectRows(const std::vector<std::size_t> &rows) const
{
    Dataset out(names_);
    out.reserveRows(rows.size());
    for (std::size_t r : rows)
        out.addRow(row(r));
    return out;
}

Dataset
Dataset::selectColumns(const std::vector<std::string> &names) const
{
    std::vector<std::size_t> cols;
    cols.reserve(names.size());
    for (const auto &name : names)
        cols.push_back(columnIndex(name));

    Dataset out(names);
    out.reserveRows(numRows());
    std::vector<double> scratch(cols.size());
    for (std::size_t r = 0; r < numRows(); ++r) {
        for (std::size_t i = 0; i < cols.size(); ++i)
            scratch[i] = at(r, cols[i]);
        out.addRow(scratch);
    }
    return out;
}

void
Dataset::append(const Dataset &other)
{
    wct_assert(other.names_ == names_,
               "appending dataset with a different schema");
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
}

void
Dataset::reserveRows(std::size_t rows)
{
    values_.reserve(values_.size() + rows * names_.size());
}

ColumnStore
Dataset::columnMajor() const
{
    return ColumnStore(*this);
}

ColumnStore::ColumnStore(const Dataset &data)
    : rows_(data.numRows()), cols_(data.numColumns())
{
    values_.resize(rows_ * cols_);
    // Row-major pass over the source: sequential reads, strided
    // writes; with cols_ ~ 20 every write stream stays cache-resident.
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::span<const double> row = data.row(r);
        for (std::size_t c = 0; c < cols_; ++c)
            values_[c * rows_ + r] = row[c];
    }
}

ColumnSummary
Dataset::summarize(std::size_t col) const
{
    wct_assert(col < numColumns(), "out of range column ", col);
    ColumnSummary s;
    s.count = numRows();
    if (s.count == 0)
        return s;

    double sum = 0.0;
    s.min = at(0, col);
    s.max = s.min;
    for (std::size_t r = 0; r < s.count; ++r) {
        const double v = at(r, col);
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(s.count);

    double ss = 0.0;
    for (std::size_t r = 0; r < s.count; ++r) {
        const double d = at(r, col) - s.mean;
        ss += d * d;
    }
    s.stddev = s.count > 1
        ? std::sqrt(ss / static_cast<double>(s.count - 1)) : 0.0;
    return s;
}

} // namespace wct
