/**
 * @file
 * CSV import/export for Dataset so collected PMU samples can be saved,
 * inspected, and reloaded without re-running the simulator.
 */

#ifndef WCT_DATA_CSV_HH
#define WCT_DATA_CSV_HH

#include <iosfwd>
#include <string>

#include "data/dataset.hh"

namespace wct
{

/** Write a dataset as CSV with a header line. */
void writeCsv(const Dataset &data, std::ostream &out);

/** Write a dataset to a file; fatal on I/O failure. */
void writeCsvFile(const Dataset &data, const std::string &path);

/**
 * Read a dataset from CSV text. The first line must be a header; all
 * cells must parse as doubles. Malformed input is a fatal error (user
 * input, not a library bug).
 */
Dataset readCsv(std::istream &in);

/** Read a dataset from a CSV file; fatal on I/O failure. */
Dataset readCsvFile(const std::string &path);

} // namespace wct

#endif // WCT_DATA_CSV_HH
