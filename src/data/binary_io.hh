/**
 * @file
 * Binary serialization primitives and the on-disk Dataset format.
 *
 * The collection cache stores datasets as checksummed little-endian
 * binary envelopes instead of CSV: doubles round-trip bit-exactly
 * (cache loads are byte-identical to the collection that produced
 * them), files are ~3x smaller, and a flipped bit is detected by the
 * FNV-1a checksum instead of silently parsing into garbage.
 *
 * Envelope layout (all integers little-endian):
 *
 *   magic     8 bytes, caller-chosen (e.g. "WCTDSET\0")
 *   version   u32, caller-chosen format version
 *   size      u64, payload byte count
 *   payload   size bytes
 *   checksum  u64, FNV-1a over the payload bytes
 *
 * Readers return std::nullopt on any mismatch — bad magic, unknown
 * version, truncation, checksum failure — so callers can fall back
 * (e.g. re-collect and overwrite a corrupt cache entry) instead of
 * dying inside the parser.
 */

#ifndef WCT_DATA_BINARY_IO_HH
#define WCT_DATA_BINARY_IO_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "data/dataset.hh"

namespace wct
{

/** FNV-1a 64-bit offset basis (the seed of an empty hash). */
constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;

/**
 * Claimed-size cap for trusted on-disk envelopes (datasets, cached
 * suites, store artifacts) — the kMaxFramePayload analogue of the
 * serve wire: a corrupt or hostile length field must fail the read,
 * never drive a giant allocation. Network-facing readers use their
 * own, tighter budget.
 */
constexpr std::uint64_t kMaxFilePayload = 1ull << 30; // 1 GiB

/** FNV-1a 64-bit hash of a byte range, chainable via `seed`. */
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = kFnv1aOffset);

/**
 * Append-only little-endian byte buffer: the writer half of the
 * payload format and the canonical encoder behind cache keys (bit
 * patterns of doubles are hashed, so keys never depend on decimal
 * formatting).
 */
class ByteSink
{
  public:
    void putU8(std::uint8_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putDouble(double v); ///< IEEE-754 bit pattern, little-endian
    void putString(std::string_view s); ///< u64 length + bytes

    const std::string &bytes() const { return bytes_; }
    std::uint64_t hash() const { return fnv1a64(bytes_); }

  private:
    std::string bytes_;
};

/**
 * Bounds-checked sequential reader over a byte buffer. Every getter
 * returns false (and latches !ok()) past the end; values read after
 * a failure are zero. Callers check ok() once at the end.
 */
class ByteParser
{
  public:
    explicit ByteParser(std::string_view bytes) : bytes_(bytes) {}

    bool getU8(std::uint8_t &v);
    bool getU32(std::uint32_t &v);
    bool getU64(std::uint64_t &v);
    bool getDouble(double &v);
    bool getString(std::string &s);

    bool ok() const { return ok_; }
    bool atEnd() const { return ok_ && pos_ == bytes_.size(); }

    /** Bytes not yet consumed (0 once a getter has failed). Parsers
     * use this to reject claimed element counts the remaining bytes
     * cannot possibly hold *before* sizing any container. */
    std::size_t
    remaining() const
    {
        return ok_ ? bytes_.size() - pos_ : 0;
    }

  private:
    bool take(void *out, std::size_t n);

    std::string_view bytes_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Write one checksummed envelope (see file comment for the layout). */
void writeEnvelope(std::ostream &out, std::string_view magic8,
                   std::uint32_t version, std::string_view payload);

/**
 * Read and verify one envelope; nullopt on bad magic, version
 * mismatch, truncation, or checksum failure. A claimed payload size
 * above `maxPayload` is rejected before any allocation, so a corrupt
 * or hostile length field can never trigger a huge alloc. There is
 * deliberately no default: every caller owns a justified budget
 * (kMaxFilePayload for on-disk artifacts, kMaxFramePayload for
 * network frames) — see the fuzz harnesses, which drive this reader
 * with each per-caller cap.
 */
std::optional<std::string>
readEnvelope(std::istream &in, std::string_view magic8,
             std::uint32_t version, std::uint64_t maxPayload);

/** Append a dataset (schema + row-major cells) to a payload. */
void appendDataset(ByteSink &sink, const Dataset &data);

/** Parse a dataset appended by appendDataset; nullopt on malformed. */
std::optional<Dataset> parseDataset(ByteParser &parser);

/** Magic and version of standalone .wctdata dataset files. */
constexpr char kDatasetMagic[] = "WCTDSET"; ///< 7 chars + NUL = 8 bytes
constexpr std::uint32_t kDatasetFormatVersion = 1;

/** Serialize one dataset as a standalone checksummed stream. */
void writeDatasetBinary(std::ostream &out, const Dataset &data);

/** Read a standalone dataset stream; nullopt on any mismatch. */
std::optional<Dataset> readDatasetBinary(std::istream &in);

} // namespace wct

#endif // WCT_DATA_BINARY_IO_HH
