/**
 * @file
 * Random sampling and train/test splitting of datasets.
 *
 * Section VI of the paper trains suite models on a random 10% of the
 * samples and tests on an independent random 10%; these helpers
 * implement that protocol deterministically from a seed.
 */

#ifndef WCT_DATA_SPLIT_HH
#define WCT_DATA_SPLIT_HH

#include <cstddef>
#include <vector>

#include "data/dataset.hh"
#include "util/rng.hh"

namespace wct
{

/** A training set and a disjoint test set drawn from one dataset. */
struct TrainTestSplit
{
    Dataset train;
    Dataset test;
};

/** Uniformly sampled row indices without replacement. */
std::vector<std::size_t> sampleIndices(std::size_t population,
                                       std::size_t count, Rng &rng);

/**
 * Draw a random fraction of the rows (without replacement).
 *
 * @param fraction in (0, 1]; the sample size is round(n * fraction),
 *                 clamped to at least one row for non-empty input.
 */
Dataset sampleFraction(const Dataset &data, double fraction, Rng &rng);

/**
 * Split into disjoint train/test parts where the training part holds
 * round(n * train_fraction) random rows and the test part the rest.
 */
TrainTestSplit randomSplit(const Dataset &data, double train_fraction,
                           Rng &rng);

/**
 * Draw two disjoint random subsets of the same dataset, each holding
 * round(n * fraction) rows — the paper's "10% train, independent 10%
 * test" protocol.
 */
TrainTestSplit disjointFractions(const Dataset &data, double fraction,
                                 Rng &rng);

/** Rows of data partitioned into k folds for cross-validation. */
std::vector<Dataset> kFold(const Dataset &data, std::size_t k, Rng &rng);

} // namespace wct

#endif // WCT_DATA_SPLIT_HH
