#include "data/remote_store.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <istream>
#include <mutex>
#include <ostream>

#include "util/logging.hh"
#include "util/socket_io.hh"

namespace wct
{

namespace fs = std::filesystem;

std::optional<StoreEndpoint>
parseStoreUrl(const std::string &url, std::string *err)
{
    const auto failWith = [err](const std::string &reason)
        -> std::optional<StoreEndpoint> {
        if (err != nullptr)
            *err = reason;
        return std::nullopt;
    };
    if (url.rfind("unix:", 0) == 0) {
        StoreEndpoint endpoint;
        endpoint.unixPath = url.substr(5);
        if (endpoint.unixPath.empty())
            return failWith("empty unix socket path in '" + url +
                            "'");
        return endpoint;
    }
    if (url.rfind("tcp:", 0) == 0) {
        const std::string digits = url.substr(4);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") !=
                std::string::npos)
            return failWith("bad port in '" + url + "'");
        const long port = std::stol(digits);
        if (port < 1 || port > 65535)
            return failWith("port out of range in '" + url + "'");
        StoreEndpoint endpoint;
        endpoint.tcpPort = static_cast<int>(port);
        return endpoint;
    }
    return failWith("store url must be unix:PATH or tcp:PORT, got '" +
                    url + "'");
}

StoreClient::~StoreClient()
{
    closeFd(fd_);
}

StoreClient::StoreClient(StoreClient &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

StoreClient &
StoreClient::operator=(StoreClient &&other) noexcept
{
    if (this != &other) {
        closeFd(fd_);
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

std::optional<StoreClient>
StoreClient::connect(const StoreEndpoint &endpoint, std::string *err)
{
    const int fd = endpoint.unixPath.empty()
                       ? connectTcp(endpoint.tcpPort, err)
                       : connectUnix(endpoint.unixPath, err);
    if (fd < 0)
        return std::nullopt;
    return StoreClient(fd);
}

std::optional<StoreResponse>
StoreClient::call(const StoreRequest &request, std::string *err)
{
    FdStreambuf buf(fd_);
    std::ostream out(&buf);
    std::istream in(&buf);
    writeStoreFrame(out, encodeStoreRequest(request));
    if (!out) {
        if (err != nullptr)
            *err = "write failed (daemon closed the connection?)";
        return std::nullopt;
    }
    const auto payload = readStoreFrame(in);
    if (!payload) {
        if (err != nullptr)
            *err = "no response (connection closed or corrupt "
                   "frame)";
        return std::nullopt;
    }
    std::string decode_err;
    auto response = decodeStoreResponse(*payload, &decode_err);
    if (!response) {
        if (err != nullptr)
            *err = decode_err;
        return std::nullopt;
    }
    return response;
}

namespace
{

/** The read-through remote backend; see the header's file comment. */
class RemoteStoreBackend final : public StoreBackend
{
  public:
    explicit RemoteStoreBackend(RemoteStoreConfig config)
        : config_(std::move(config)), cache_(config_.cacheDir)
    {
    }

    const std::string &
    dir() const override
    {
        return cache_.dir();
    }

    std::string
    path(const ArtifactId &id) const override
    {
        return cache_.path(id);
    }

    bool
    contains(const ArtifactId &id) const override
    {
        if (cache_.contains(id))
            return true;
        StoreRequest request;
        request.op = StoreOp::Stat;
        request.artifact = id;
        const auto response = call(std::move(request));
        return response && response->status == StoreStatus::Ok;
    }

    std::optional<std::string>
    load(const ArtifactId &id) const override
    {
        if (auto hit = cache_.load(id)) {
            touch(cache_.path(id));
            return hit;
        }
        StoreRequest request;
        request.op = StoreOp::Load;
        request.artifact = id;
        const auto response = call(std::move(request));
        if (!response ||
            response->status == StoreStatus::NotFound)
            return std::nullopt; // a plain miss
        if (response->status != StoreStatus::Ok) {
            wct_warn("store daemon refused load of '", id.fileName(),
                     "': ", storeStatusName(response->status), " (",
                     response->error, "); recomputing");
            return std::nullopt;
        }
        // Content-addressed kinds re-verify on every fetch: a corrupt
        // or lying daemon degrades to a recompute, never to wrong
        // bytes served under a content key.
        if (contentKind(id.kind) &&
            fnv1a64(response->payload) != id.key) {
            wct_warn("remote artifact '", id.fileName(),
                     "' failed content re-hash (tampered or corrupt "
                     "daemon?); recomputing");
            return std::nullopt;
        }
        if (cache_.store(id, response->payload))
            evictToFit(cache_.path(id));
        return response->payload;
    }

    bool
    store(const ArtifactId &id,
          std::string_view payload) const override
    {
        const bool local = cache_.store(id, payload);
        if (local)
            evictToFit(cache_.path(id));
        StoreRequest request;
        request.op = StoreOp::Store;
        request.artifact = id;
        request.payload = std::string(payload);
        const auto response = call(std::move(request));
        const bool remote =
            response && response->status == StoreStatus::Ok;
        if (response && !remote)
            wct_warn("store daemon refused upload of '",
                     id.fileName(),
                     "': ", storeStatusName(response->status), " (",
                     response->error, ")");
        // A failed upload costs sharing, not correctness: the local
        // copy (or the recompute path) still serves this run.
        return local || remote;
    }

    bool
    remove(const ArtifactId &id) const override
    {
        const bool local = cache_.remove(id);
        StoreRequest request;
        request.op = StoreOp::Remove;
        request.artifact = id;
        const auto response = call(std::move(request));
        return (response && response->status == StoreStatus::Ok) ||
               local;
    }

    std::vector<ArtifactInfo>
    list() const override
    {
        StoreRequest request;
        request.op = StoreOp::List;
        const auto response = call(std::move(request));
        if (!response || response->status != StoreStatus::Ok)
            return cache_.list(); // degrade to what we have locally
        return response->artifacts;
    }

    std::vector<ArtifactId>
    gc(const std::vector<ArtifactId> &live,
       std::uint64_t graceSeconds) const override
    {
        // The local cache is swept quietly with the same liveness;
        // the daemon's sweep is the one reported.
        const auto localRemoved = cache_.gc(live, graceSeconds);
        StoreRequest request;
        request.op = StoreOp::Gc;
        request.live = live;
        request.graceSeconds = graceSeconds;
        const auto response = call(std::move(request));
        if (!response || response->status != StoreStatus::Ok)
            return localRemoved;
        return response->removed;
    }

  private:
    bool
    contentKind(const std::string &kind) const
    {
        return std::find(config_.contentKinds.begin(),
                         config_.contentKinds.end(),
                         kind) != config_.contentKinds.end();
    }

    /** One round trip, serialized on the shared connection. A failed
     * call drops the connection and retries once (the daemon may
     * have restarted); a daemon that stays down warns once and turns
     * every later call into a cheap local-only miss. */
    std::optional<StoreResponse>
    call(StoreRequest request) const
    {
        std::lock_guard lock(mutex_);
        request.id =
            nextId_.fetch_add(1, std::memory_order_relaxed);
        for (int attempt = 0; attempt < 2; ++attempt) {
            std::string err;
            if (!client_) {
                const auto endpoint =
                    parseStoreUrl(config_.url, &err);
                if (!endpoint) {
                    warnOnce(err);
                    return std::nullopt;
                }
                auto client = StoreClient::connect(*endpoint, &err);
                if (!client) {
                    warnOnce("store daemon at '" + config_.url +
                             "' unreachable (" + err +
                             "); continuing local-only");
                    return std::nullopt;
                }
                client_ = std::move(*client);
                warned_ = false;
            }
            auto response = client_->call(request, &err);
            if (response) {
                if (response->id != request.id ||
                    response->op != request.op) {
                    warnOnce("store daemon answered with a mismatched "
                             "frame; dropping the connection");
                    client_.reset();
                    return std::nullopt;
                }
                return response;
            }
            client_.reset(); // stale connection: retry once
        }
        warnOnce("store daemon at '" + config_.url +
                 "' dropped the connection; continuing local-only");
        return std::nullopt;
    }

    void
    warnOnce(const std::string &message) const
    {
        if (warned_)
            return;
        warned_ = true;
        wct_warn(message);
    }

    /** Refresh an entry's LRU stamp on a cache hit. */
    void
    touch(const std::string &path) const
    {
        std::error_code ec;
        fs::last_write_time(path, fs::file_time_type::clock::now(),
                            ec);
    }

    /**
     * Enforce --store-cache-bytes: oldest-mtime-first removal until
     * the cache dir fits, never touching the entry just written.
     * POSIX unlink keeps a concurrent reader of an evicted file safe
     * (its descriptor stays valid); a reader that misses instead
     * simply re-fetches from the daemon.
     */
    void
    evictToFit(const std::string &protect) const
    {
        if (config_.cacheBytes == 0 || !cache_.enabled())
            return;
        std::lock_guard lock(evictMutex_);
        struct Entry
        {
            std::string path;
            std::uintmax_t bytes = 0;
            fs::file_time_type mtime;
        };
        std::vector<Entry> entries;
        std::uintmax_t total = 0;
        std::error_code ec;
        for (const auto &file :
             fs::directory_iterator(cache_.dir(), ec)) {
            if (!file.is_regular_file() ||
                file.path().extension() != ".wctart")
                continue;
            Entry entry;
            entry.path = file.path().string();
            entry.bytes = file.file_size(ec);
            entry.mtime = fs::last_write_time(file.path(), ec);
            total += entry.bytes;
            entries.push_back(std::move(entry));
        }
        if (total <= config_.cacheBytes)
            return;
        std::sort(entries.begin(), entries.end(),
                  [](const Entry &a, const Entry &b) {
                      return a.mtime != b.mtime ? a.mtime < b.mtime
                                                : a.path < b.path;
                  });
        for (const Entry &entry : entries) {
            if (entry.path == protect)
                continue;
            if (fs::remove(entry.path, ec) && !ec)
                total -= entry.bytes;
            if (total <= config_.cacheBytes)
                break;
        }
    }

    RemoteStoreConfig config_;
    ArtifactStore cache_;
    mutable std::mutex mutex_;      ///< connection + request id
    mutable std::mutex evictMutex_; ///< cache-size enforcement
    mutable std::optional<StoreClient> client_;
    mutable bool warned_ = false;
    mutable std::atomic<std::uint64_t> nextId_{1};
};

} // namespace

ArtifactStore
makeRemoteStore(const RemoteStoreConfig &config)
{
    return ArtifactStore(
        std::make_shared<RemoteStoreBackend>(config));
}

} // namespace wct
