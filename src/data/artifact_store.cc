#include "data/artifact_store.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "util/logging.hh"

namespace wct
{

namespace fs = std::filesystem;

namespace
{

constexpr char kArtifactExtension[] = ".wctart";

/** Monotonic per-process counter making temp file names unique even
 * across threads racing on the same key. */
std::atomic<std::uint64_t> tempCounter{0};

/** The on-disk directory backend; see the header's file comment. */
class LocalStoreBackend final : public StoreBackend
{
  public:
    explicit LocalStoreBackend(std::string dir) : dir_(std::move(dir))
    {
    }

    const std::string &
    dir() const override
    {
        return dir_;
    }

    std::string
    path(const ArtifactId &id) const override
    {
        return (fs::path(dir_) / id.fileName()).string();
    }

    bool
    contains(const ArtifactId &id) const override
    {
        return fs::exists(path(id));
    }

    std::optional<std::string>
    load(const ArtifactId &id) const override
    {
        const std::string file = path(id);
        std::ifstream in(file, std::ios::binary);
        if (!in)
            return std::nullopt; // missing: a plain miss, no warning

        const auto envelope = readEnvelope(
            in, std::string_view(kArtifactMagic, 8),
            kArtifactFormatVersion, kMaxFilePayload);
        if (!envelope) {
            wct_warn("ignoring corrupt or incompatible artifact '",
                     file, "'; recomputing");
            return std::nullopt;
        }

        // The payload self-identifies; a renamed or cross-linked file
        // must not be served under the wrong key.
        ByteParser parser(*envelope);
        std::string kind;
        std::uint64_t key = 0;
        if (!parser.getString(kind) || !parser.getU64(key) ||
            kind != id.kind || key != id.key) {
            wct_warn("artifact '", file,
                     "' does not match its address (", id.kind, "-",
                     keyHex(id.key), "); recomputing");
            return std::nullopt;
        }
        std::string payload;
        if (!parser.getString(payload) || !parser.atEnd()) {
            wct_warn("ignoring corrupt or incompatible artifact '",
                     file, "'; recomputing");
            return std::nullopt;
        }
        return payload;
    }

    bool
    store(const ArtifactId &id,
          std::string_view payload) const override
    {
        if (!validArtifactKind(id.kind)) {
            wct_warn("refusing artifact with invalid kind '", id.kind,
                     "'");
            return false;
        }
        std::error_code ec;
        fs::create_directories(dir_, ec);
        if (ec) {
            wct_warn("cannot create artifact store '", dir_, "': ",
                     ec.message());
            return false;
        }

        ByteSink full;
        full.putString(id.kind);
        full.putU64(id.key);
        full.putString(std::string(payload));
        std::ostringstream stream;
        writeEnvelope(stream, std::string_view(kArtifactMagic, 8),
                      kArtifactFormatVersion, full.bytes());

        // Unique temp name per writer, then an atomic rename:
        // concurrent writers of one key serialize on the rename
        // (identical content, last one wins) and a crash never
        // leaves a torn final file.
        const std::string final_path = path(id);
        const std::string temp_path =
            final_path + "." + std::to_string(::getpid()) + "." +
            std::to_string(tempCounter.fetch_add(
                1, std::memory_order_relaxed)) +
            ".tmp";
        {
            std::ofstream out(temp_path,
                              std::ios::binary | std::ios::trunc);
            if (!out) {
                wct_warn("cannot write artifact file '", temp_path,
                         "'");
                return false;
            }
            out << stream.str();
            if (!out) {
                wct_warn("short write to artifact file '", temp_path,
                         "'");
                fs::remove(temp_path, ec);
                return false;
            }
        }
        fs::rename(temp_path, final_path, ec);
        if (ec) {
            wct_warn("cannot move artifact into place: ",
                     ec.message());
            fs::remove(temp_path, ec);
            return false;
        }
        return true;
    }

    bool
    remove(const ArtifactId &id) const override
    {
        std::error_code ec;
        return fs::remove(path(id), ec) && !ec;
    }

    std::vector<ArtifactInfo>
    list() const override
    {
        std::vector<ArtifactInfo> out;
        if (!fs::is_directory(dir_))
            return out;
        for (const auto &entry : fs::directory_iterator(dir_)) {
            if (!entry.is_regular_file() ||
                entry.path().extension() != kArtifactExtension)
                continue;
            const std::string stem = entry.path().stem().string();
            const std::size_t dash = stem.rfind('-');
            if (dash == std::string::npos)
                continue;
            const auto key = parseKeyHex(
                std::string_view(stem).substr(dash + 1));
            if (!key)
                continue;
            ArtifactInfo info;
            info.id.kind = stem.substr(0, dash);
            info.id.key = *key;
            std::error_code ec;
            info.fileBytes = entry.file_size(ec);
            info.path = entry.path().string();
            out.push_back(std::move(info));
        }
        std::sort(out.begin(), out.end(),
                  [](const ArtifactInfo &a, const ArtifactInfo &b) {
                      return a.path < b.path;
                  });
        return out;
    }

    std::vector<ArtifactId>
    gc(const std::vector<ArtifactId> &live,
       std::uint64_t graceSeconds) const override
    {
        std::vector<ArtifactId> removed;
        if (!fs::is_directory(dir_))
            return removed;

        // Everything written at or after the cutoff survives this
        // sweep: the caller computed liveness *before* calling, so a
        // shard artifact published by a concurrent worker in between
        // would otherwise look dead and be collected (the
        // partially-stitched-run race). The grace window widens the
        // protection for fleet stores.
        const auto cutoff = fs::file_time_type::clock::now() -
                            std::chrono::seconds(graceSeconds);

        std::vector<std::string> keep;
        keep.reserve(live.size());
        for (const ArtifactId &id : live)
            keep.push_back(id.fileName());

        for (const ArtifactInfo &info : list()) {
            if (std::find(keep.begin(), keep.end(),
                          info.id.fileName()) != keep.end())
                continue;
            std::error_code ec;
            const auto mtime = fs::last_write_time(info.path, ec);
            if (ec || mtime >= cutoff)
                continue; // vanished or fresh: keep
            if (fs::remove(info.path, ec) && !ec)
                removed.push_back(info.id);
        }
        // Sweep temp droppings of crashed writers; the same cutoff
        // spares a temp file an alive writer is about to rename.
        for (const auto &entry : fs::directory_iterator(dir_)) {
            if (!entry.is_regular_file() ||
                entry.path().extension() != ".tmp")
                continue;
            std::error_code ec;
            const auto mtime = fs::last_write_time(entry.path(), ec);
            if (ec || mtime >= cutoff)
                continue;
            fs::remove(entry.path(), ec);
        }
        return removed;
    }

  private:
    std::string dir_;
};

const std::string kEmptyDir;

} // namespace

KeyBuilder &
KeyBuilder::u8(std::uint8_t v)
{
    sink_.putU8(v);
    return *this;
}

KeyBuilder &
KeyBuilder::u32(std::uint32_t v)
{
    sink_.putU32(v);
    return *this;
}

KeyBuilder &
KeyBuilder::u64(std::uint64_t v)
{
    sink_.putU64(v);
    return *this;
}

KeyBuilder &
KeyBuilder::f64(double v)
{
    // Canonicalize the one pair of distinct bit patterns that
    // compares equal: configs that are == must never key apart.
    sink_.putDouble(v == 0.0 ? 0.0 : v);
    return *this;
}

KeyBuilder &
KeyBuilder::str(const std::string &s)
{
    sink_.putString(s);
    return *this;
}

KeyBuilder &
KeyBuilder::bytes(std::string_view raw)
{
    sink_.putU64(raw.size());
    for (char c : raw)
        sink_.putU8(static_cast<std::uint8_t>(c));
    return *this;
}

std::string
keyHex(std::uint64_t key)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[key & 0xf];
        key >>= 4;
    }
    return out;
}

std::optional<std::uint64_t>
parseKeyHex(std::string_view hex)
{
    if (hex.size() != 16)
        return std::nullopt;
    std::uint64_t key = 0;
    for (char c : hex) {
        key <<= 4;
        if (c >= '0' && c <= '9')
            key |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            key |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            key |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return std::nullopt;
    }
    return key;
}

std::string
ArtifactId::fileName() const
{
    return kind + "-" + keyHex(key) + kArtifactExtension;
}

bool
validArtifactKind(std::string_view kind)
{
    if (kind.empty() || kind.size() > 64)
        return false;
    for (char c : kind) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' ||
                        c == '_';
        if (!ok)
            return false;
    }
    return true;
}

ArtifactStore::ArtifactStore(std::string dir)
{
    if (!dir.empty())
        backend_ =
            std::make_shared<LocalStoreBackend>(std::move(dir));
}

const std::string &
ArtifactStore::dir() const
{
    return enabled() ? backend_->dir() : kEmptyDir;
}

std::string
ArtifactStore::path(const ArtifactId &id) const
{
    return enabled() ? backend_->path(id) : std::string();
}

bool
ArtifactStore::contains(const ArtifactId &id) const
{
    return enabled() && backend_->contains(id);
}

std::optional<std::string>
ArtifactStore::load(const ArtifactId &id) const
{
    if (!enabled())
        return std::nullopt;
    return backend_->load(id);
}

bool
ArtifactStore::store(const ArtifactId &id,
                     std::string_view payload) const
{
    return enabled() && backend_->store(id, payload);
}

bool
ArtifactStore::remove(const ArtifactId &id) const
{
    return enabled() && backend_->remove(id);
}

std::vector<ArtifactInfo>
ArtifactStore::list() const
{
    if (!enabled())
        return {};
    return backend_->list();
}

std::vector<ArtifactId>
ArtifactStore::gc(const std::vector<ArtifactId> &live,
                  std::uint64_t graceSeconds) const
{
    if (!enabled())
        return {};
    return backend_->gc(live, graceSeconds);
}

} // namespace wct
