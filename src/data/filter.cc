#include "data/filter.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace wct
{

Dataset
filterRows(const Dataset &data,
           const std::function<bool(std::span<const double>)> &keep)
{
    std::vector<std::size_t> rows;
    for (std::size_t r = 0; r < data.numRows(); ++r)
        if (keep(data.row(r)))
            rows.push_back(r);
    return data.selectRows(rows);
}

Dataset
removeOutliers(const Dataset &data, const std::string &column,
               double z_threshold)
{
    wct_assert(z_threshold > 0.0, "non-positive z threshold ",
               z_threshold);
    const std::size_t col = data.columnIndex(column);
    const ColumnSummary summary = data.summarize(col);
    if (summary.stddev == 0.0)
        return data;
    const double lo = summary.mean - z_threshold * summary.stddev;
    const double hi = summary.mean + z_threshold * summary.stddev;
    return filterRows(data, [col, lo, hi](std::span<const double> row) {
        return row[col] >= lo && row[col] <= hi;
    });
}

Dataset
clampColumn(const Dataset &data, const std::string &column, double lo,
            double hi)
{
    wct_assert(lo <= hi, "clamp range inverted: [", lo, ", ", hi, "]");
    Dataset out = data;
    const std::size_t col = out.columnIndex(column);
    for (std::size_t r = 0; r < out.numRows(); ++r)
        out.at(r, col) = std::clamp(out.at(r, col), lo, hi);
    return out;
}

} // namespace wct
