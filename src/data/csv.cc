#include "data/csv.hh"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace wct
{

void
writeCsv(const Dataset &data, std::ostream &out)
{
    out << join(data.columnNames(), ",") << "\n";
    std::ostringstream line;
    line.precision(12);
    for (std::size_t r = 0; r < data.numRows(); ++r) {
        line.str("");
        auto row = data.row(r);
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                line << ',';
            line << row[c];
        }
        out << line.str() << "\n";
    }
}

void
writeCsvFile(const Dataset &data, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        wct_fatal("cannot open '", path, "' for writing");
    writeCsv(data, out);
    out.flush();
    if (!out)
        wct_fatal("write error on '", path, "'");
}

Dataset
readCsv(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line))
        wct_fatal("CSV input is empty (missing header)");

    std::vector<std::string> names;
    for (auto &name : split(line, ','))
        names.push_back(trim(name));
    Dataset data(names);

    std::vector<double> row(names.size());
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (trim(line).empty())
            continue;
        const auto cells = split(line, ',');
        if (cells.size() != names.size()) {
            wct_fatal("CSV line ", line_no, " has ", cells.size(),
                      " fields, expected ", names.size());
        }
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::string cell = trim(cells[c]);
            char *end = nullptr;
            row[c] = std::strtod(cell.c_str(), &end);
            if (end == cell.c_str() || *end != '\0') {
                wct_fatal("CSV line ", line_no, " field ", c + 1,
                          " ('", cell, "') is not a number");
            }
        }
        data.addRow(row);
    }
    return data;
}

Dataset
readCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        wct_fatal("cannot open '", path, "' for reading");
    return readCsv(in);
}

} // namespace wct
