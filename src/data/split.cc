#include "data/split.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace wct
{

std::vector<std::size_t>
sampleIndices(std::size_t population, std::size_t count, Rng &rng)
{
    wct_assert(count <= population,
               "cannot draw ", count, " from ", population);
    std::vector<std::size_t> all(population);
    std::iota(all.begin(), all.end(), std::size_t(0));
    // Partial Fisher-Yates: after i steps the first i slots hold a
    // uniform sample without replacement.
    for (std::size_t i = 0; i < count; ++i) {
        std::size_t j = i + rng.uniformInt(population - i);
        std::swap(all[i], all[j]);
    }
    all.resize(count);
    return all;
}

namespace
{

std::size_t
fractionCount(std::size_t population, double fraction)
{
    wct_assert(fraction > 0.0 && fraction <= 1.0,
               "fraction out of (0, 1]: ", fraction);
    if (population == 0)
        return 0;
    auto count = static_cast<std::size_t>(
        std::llround(fraction * static_cast<double>(population)));
    return std::clamp<std::size_t>(count, 1, population);
}

} // namespace

Dataset
sampleFraction(const Dataset &data, double fraction, Rng &rng)
{
    const std::size_t count = fractionCount(data.numRows(), fraction);
    return data.selectRows(sampleIndices(data.numRows(), count, rng));
}

TrainTestSplit
randomSplit(const Dataset &data, double train_fraction, Rng &rng)
{
    const std::size_t n = data.numRows();
    const std::size_t train_n = fractionCount(n, train_fraction);
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t(0));
    rng.shuffle(all);

    TrainTestSplit out;
    out.train = data.selectRows(
        {all.begin(), all.begin() + static_cast<std::ptrdiff_t>(train_n)});
    out.test = data.selectRows(
        {all.begin() + static_cast<std::ptrdiff_t>(train_n), all.end()});
    return out;
}

TrainTestSplit
disjointFractions(const Dataset &data, double fraction, Rng &rng)
{
    const std::size_t n = data.numRows();
    const std::size_t count = fractionCount(n, fraction);
    wct_assert(2 * count <= n,
               "two disjoint fractions of ", fraction,
               " do not fit in ", n, " rows");
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t(0));
    rng.shuffle(all);

    TrainTestSplit out;
    out.train = data.selectRows(
        {all.begin(), all.begin() + static_cast<std::ptrdiff_t>(count)});
    out.test = data.selectRows(
        {all.begin() + static_cast<std::ptrdiff_t>(count),
         all.begin() + static_cast<std::ptrdiff_t>(2 * count)});
    return out;
}

std::vector<Dataset>
kFold(const Dataset &data, std::size_t k, Rng &rng)
{
    wct_assert(k >= 2, "k-fold needs k >= 2");
    wct_assert(data.numRows() >= k, "fewer rows than folds");
    std::vector<std::size_t> all(data.numRows());
    std::iota(all.begin(), all.end(), std::size_t(0));
    rng.shuffle(all);

    std::vector<Dataset> folds;
    folds.reserve(k);
    const std::size_t n = all.size();
    for (std::size_t f = 0; f < k; ++f) {
        // Spread the remainder over the first folds.
        const std::size_t begin = f * n / k;
        const std::size_t end = (f + 1) * n / k;
        folds.push_back(data.selectRows(
            {all.begin() + static_cast<std::ptrdiff_t>(begin),
             all.begin() + static_cast<std::ptrdiff_t>(end)}));
    }
    return folds;
}

} // namespace wct
