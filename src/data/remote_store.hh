/**
 * @file
 * Remote artifact store backend: an ArtifactStore whose source of
 * truth is a `wct store serve` daemon reached over the WCTSTOR wire
 * protocol (data/store_wire.hh), fronted by a read-through local
 * cache so one warm fleet store fills every worker's disk lazily.
 *
 * Semantics (docs/store.md):
 *
 *  - load: local cache hit wins (and refreshes the entry's LRU
 *    stamp); otherwise the artifact is fetched from the daemon,
 *    verified, written into the cache (evicting the oldest entries
 *    past --store-cache-bytes) and returned.
 *  - verification: content-addressed kinds (config.contentKinds,
 *    default {"mtree"}) have key == fnv1a64(payload) by construction,
 *    so every fetch is re-hashed — a corrupt or lying daemon degrades
 *    to warn-and-recompute, never wrong results. Stage-keyed kinds
 *    hash *inputs*, not outputs, and are already envelope-checksummed
 *    and (kind,key)-prefixed end to end.
 *  - store: written to the local cache and uploaded best-effort; an
 *    unreachable daemon costs sharing, not correctness.
 *  - any wire failure (daemon down, malformed response, truncated
 *    frame) is a warning plus a miss; pipelines recompute.
 *
 * Thread safety: one connection guarded by a mutex (collection shards
 * store from a parallel loop); eviction is serialized the same way.
 */

#ifndef WCT_DATA_REMOTE_STORE_HH
#define WCT_DATA_REMOTE_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/artifact_store.hh"
#include "data/store_wire.hh"

namespace wct
{

/**
 * Parsed --store-url. Exactly one of unixPath / tcpPort is set:
 * "unix:/path/to.sock" or "tcp:PORT" (loopback only — the store
 * trusts its transport; see docs/store.md "Deployment").
 */
struct StoreEndpoint
{
    std::string unixPath;
    int tcpPort = 0;
};

/** Parse a store URL; nullopt + reason on anything malformed. */
std::optional<StoreEndpoint> parseStoreUrl(const std::string &url,
                                           std::string *err);

/** Configuration of a remote store handle. */
struct RemoteStoreConfig
{
    std::string url;      ///< "unix:PATH" or "tcp:PORT"
    std::string cacheDir; ///< local read-through cache directory

    /** LRU size bound on the cache dir; 0 = unbounded. */
    std::uint64_t cacheBytes = 0;

    /** Kinds whose key is the FNV-1a hash of the payload itself;
     * fetched payloads of these kinds are re-hashed and rejected on
     * mismatch. */
    std::vector<std::string> contentKinds = {"mtree"};
};

/**
 * Blocking WCTSTOR client: connect once, then one call() at a time
 * (callers serialize; RemoteStore does so behind its mutex). Used
 * directly by the `wct store ping/ls/gc/shutdown` commands.
 */
class StoreClient
{
  public:
    ~StoreClient();
    StoreClient(StoreClient &&other) noexcept;
    StoreClient &operator=(StoreClient &&other) noexcept;

    /** Connect to a daemon endpoint; nullopt + err on failure. */
    static std::optional<StoreClient>
    connect(const StoreEndpoint &endpoint, std::string *err);

    /** Send one request and wait for its response. */
    std::optional<StoreResponse> call(const StoreRequest &request,
                                      std::string *err);

  private:
    explicit StoreClient(int fd) : fd_(fd) {}

    int fd_ = -1;
};

/**
 * Build an ArtifactStore handle over the remote backend. The handle
 * is always enabled; a daemon that is down at construction (or dies
 * later) degrades every remote operation to warn-once + local-only.
 */
ArtifactStore makeRemoteStore(const RemoteStoreConfig &config);

} // namespace wct

#endif // WCT_DATA_REMOTE_STORE_HH
