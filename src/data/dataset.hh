/**
 * @file
 * Tabular sample container used throughout the toolkit.
 *
 * A Dataset holds the per-interval PMU samples: one named numeric
 * column per metric (Table I of the paper) and one row per measurement
 * interval. It deliberately stays dumb — modeling code addresses
 * columns by index after a single name lookup.
 */

#ifndef WCT_DATA_DATASET_HH
#define WCT_DATA_DATASET_HH

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace wct
{

/** Five-number-ish descriptive summary of one dataset column. */
struct ColumnSummary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

class ColumnStore;

/**
 * Row-major table of doubles with named columns.
 *
 * Rows are stored contiguously so per-sample access (prediction,
 * model fitting) touches one cache line per narrow sample. Columnar
 * scans — the split-search hot loop of tree training — go through the
 * derived column-major ColumnStore (columnMajor()) instead, which
 * streams one attribute contiguously.
 */
class Dataset
{
  public:
    Dataset() = default;

    /** Create an empty dataset with the given column schema. */
    explicit Dataset(std::vector<std::string> column_names);

    /** Number of columns in the schema. */
    std::size_t numColumns() const { return names_.size(); }

    /** Number of sample rows. */
    std::size_t numRows() const
    {
        return names_.empty() ? 0 : values_.size() / names_.size();
    }

    bool empty() const { return values_.empty(); }

    /** Column schema, in storage order. */
    const std::vector<std::string> &columnNames() const { return names_; }

    /** True when a column with this name exists. */
    bool hasColumn(const std::string &name) const;

    /** Index of a column; fatal error when absent. */
    std::size_t columnIndex(const std::string &name) const;

    /** Append a row; must match the schema arity. */
    void addRow(const std::vector<double> &row);

    /** Append a row given as a span (no copy of the caller's buffer). */
    void addRow(std::span<const double> row);

    /** Cell accessor. */
    double at(std::size_t row, std::size_t col) const;

    /** Mutable cell accessor. */
    double &at(std::size_t row, std::size_t col);

    /** View of one full row. */
    std::span<const double> row(std::size_t r) const;

    /** Copy of one full column. */
    std::vector<double> column(std::size_t c) const;

    /** Copy of one full column by name. */
    std::vector<double> column(const std::string &name) const;

    /** New dataset holding only the given rows (in the given order). */
    Dataset selectRows(const std::vector<std::size_t> &rows) const;

    /** New dataset holding only the named columns. */
    Dataset selectColumns(const std::vector<std::string> &names) const;

    /** Append all rows of another dataset with an identical schema. */
    void append(const Dataset &other);

    /** Reserve storage for the given number of rows. */
    void reserveRows(std::size_t rows);

    /** Descriptive summary of one column. */
    ColumnSummary summarize(std::size_t col) const;

    /** Column-major (SoA) copy of the table for columnar scans. */
    ColumnStore columnMajor() const;

  private:
    std::vector<std::string> names_;
    std::vector<double> values_;
};

/**
 * Column-major (structure-of-arrays) snapshot of a Dataset.
 *
 * Each column is one contiguous array, so a scan over one attribute
 * across all rows — the inner loop of SDR split search — streams
 * sequentially instead of striding numColumns() doubles per element.
 * The store is an immutable copy: it does not observe later addRow
 * calls on the source dataset. Cells are bit-identical to the source
 * (plain copies), so algorithms may mix row-major and column-major
 * access without floating-point divergence.
 */
class ColumnStore
{
  public:
    ColumnStore() = default;

    /** Transpose a dataset into columnar storage. */
    explicit ColumnStore(const Dataset &data);

    std::size_t numRows() const { return rows_; }
    std::size_t numColumns() const { return cols_; }

    /** Contiguous storage of one column (numRows() doubles). */
    const double *
    columnData(std::size_t c) const
    {
        return values_.data() + c * rows_;
    }

    /** Span view of one column. */
    std::span<const double>
    column(std::size_t c) const
    {
        return {columnData(c), rows_};
    }

    /** Cell accessor (bit-identical to Dataset::at on the source). */
    double
    at(std::size_t row, std::size_t col) const
    {
        return values_[col * rows_ + row];
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> values_; ///< column-major, cols_ * rows_
};

} // namespace wct

#endif // WCT_DATA_DATASET_HH
