/**
 * @file
 * WCTSTOR: the length-prefixed binary wire protocol of the remote
 * artifact store (`wct store serve` and the RemoteStore backend).
 *
 * Every message — request or response — is one checksummed envelope
 * in the data/binary_io format (magic "WCTSTOR\0", its own version
 * counter, FNV-1a checksum), the same framing the serving subsystem
 * uses, so truncation and corruption detection are shared instead of
 * reinvented. The payload starts with a one-byte opcode and a
 * caller-chosen request id that the response echoes, then an
 * opcode-specific body:
 *
 *   request  := opcode:u8 id:u64 body
 *   response := opcode:u8 id:u64 status:u8 body
 *
 *   load body (request):      kind:str key:u64
 *   load body (response):     payload:str
 *   store body (request):     kind:str key:u64 payload:str
 *   store body (response):    empty
 *   stat body (request):      kind:str key:u64
 *   stat body (response):     fileBytes:u64
 *   remove bodies:            like stat request / empty response
 *   list body (request):      empty
 *   list body (response):     n:u64 (kind:str key:u64 bytes:u64)*n
 *   gc body (request):        grace:u64 n:u64 (kind:str key:u64)*n
 *   gc body (response):       n:u64 (kind:str key:u64)*n   # removed
 *   ping / shutdown bodies:   empty
 *
 * Error responses (status != Ok) carry a message string instead of a
 * body. Decoders never terminate the process: a malformed payload
 * yields nullopt and the daemon answers with StoreStatus::
 * MalformedFrame, keeping a bad client from taking the store down.
 * Artifact kinds are validated at decode (validArtifactKind) so a
 * hostile kind like "../../etc/x" can never become a file-name
 * component, and claimed list counts are checked against the bytes
 * actually present before any container is sized.
 */

#ifndef WCT_DATA_STORE_WIRE_HH
#define WCT_DATA_STORE_WIRE_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "data/artifact_store.hh"

namespace wct
{

/** Envelope magic of store frames (7 chars + NUL = 8 bytes). */
constexpr char kStoreWireMagic[] = "WCTSTOR";

/** Store wire format version; a mismatch rejects the whole frame. */
constexpr std::uint32_t kStoreWireFormatVersion = 1;

/**
 * Hard cap on one store frame's payload bytes, both directions.
 * Frames arrive from untrusted sockets, so readStoreFrame refuses a
 * claimed size above this before allocating anything. Matches the
 * serve wire's budget; artifacts larger than this stay local-only.
 */
constexpr std::uint64_t kMaxStoreFramePayload = 1ull << 28; // 256 MiB

/** Operation selector, first payload byte of every message. */
enum class StoreOp : std::uint8_t
{
    Load = 1,     ///< artifact payload out (NotFound when missing)
    Store = 2,    ///< artifact payload in
    Stat = 3,     ///< existence + size probe, no payload transfer
    List = 4,     ///< every artifact the daemon holds
    Gc = 5,       ///< sweep dead artifacts against a live set
    Ping = 6,     ///< liveness + protocol handshake
    Shutdown = 7, ///< stop the daemon (when it allows remote stop)
    Remove = 8,   ///< delete one artifact
};

/** Response status byte. */
enum class StoreStatus : std::uint8_t
{
    Ok = 0,
    Error = 1,          ///< request was understood but failed
    NotFound = 2,       ///< load/stat/remove of a missing artifact
    ShuttingDown = 3,   ///< daemon is draining; no new work
    MalformedFrame = 4, ///< request frame did not decode
};

/** Human-readable opcode name (for logs). */
const char *storeOpName(StoreOp op);

/** Human-readable status name. */
const char *storeStatusName(StoreStatus status);

/** One decoded store request message. */
struct StoreRequest
{
    StoreOp op = StoreOp::Ping;
    std::uint64_t id = 0;

    ArtifactId artifact;  ///< Load / Store / Stat / Remove
    std::string payload;  ///< Store
    std::vector<ArtifactId> live; ///< Gc
    std::uint64_t graceSeconds = 0; ///< Gc
};

/** One decoded store response message. */
struct StoreResponse
{
    StoreOp op = StoreOp::Ping;
    std::uint64_t id = 0;
    StoreStatus status = StoreStatus::Ok;
    std::string error; ///< set when status != Ok

    std::string payload;                 ///< Load
    std::uint64_t fileBytes = 0;         ///< Stat
    std::vector<ArtifactInfo> artifacts; ///< List
    std::vector<ArtifactId> removed;     ///< Gc
};

/** Encode a request as one complete envelope frame. */
std::string encodeStoreRequest(const StoreRequest &request);

/** Encode a response as one complete envelope frame. */
std::string encodeStoreResponse(const StoreResponse &response);

/**
 * Decode a request payload (the envelope's contents). nullopt on a
 * malformed payload, with the reason in `err` when non-null.
 */
std::optional<StoreRequest>
decodeStoreRequest(std::string_view payload,
                   std::string *err = nullptr);

/** Decode a response payload; nullopt on malformed. */
std::optional<StoreResponse>
decodeStoreResponse(std::string_view payload,
                    std::string *err = nullptr);

/**
 * Read one store frame (envelope) from a stream and return its
 * payload; nullopt on EOF, truncation, bad magic, version mismatch,
 * checksum failure, or a claimed payload size above
 * kMaxStoreFramePayload (checked before any allocation).
 */
std::optional<std::string> readStoreFrame(std::istream &in);

/** Write one already-encoded frame to a stream and flush it. */
void writeStoreFrame(std::ostream &out, std::string_view frame);

} // namespace wct

#endif // WCT_DATA_STORE_WIRE_HH
