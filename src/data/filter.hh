/**
 * @file
 * Row filtering and outlier removal for datasets.
 *
 * Collected PMU samples occasionally contain pathological intervals
 * (context-switch analogues, first-touch storms); these helpers let
 * analyses strip them reproducibly before modeling.
 */

#ifndef WCT_DATA_FILTER_HH
#define WCT_DATA_FILTER_HH

#include <functional>
#include <string>

#include "data/dataset.hh"

namespace wct
{

/** Rows for which the predicate holds, in original order. */
Dataset filterRows(
    const Dataset &data,
    const std::function<bool(std::span<const double>)> &keep);

/**
 * Remove rows whose value in `column` lies more than `z_threshold`
 * sample standard deviations from the column mean. A zero-variance
 * column keeps every row.
 */
Dataset removeOutliers(const Dataset &data, const std::string &column,
                       double z_threshold = 4.0);

/**
 * Clip a column's values into [lo, hi] (winsorising instead of
 * dropping, which preserves row alignment with other data).
 */
Dataset clampColumn(const Dataset &data, const std::string &column,
                    double lo, double hi);

} // namespace wct

#endif // WCT_DATA_FILTER_HH
