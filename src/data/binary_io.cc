#include "data/binary_io.hh"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace wct
{

namespace
{

/** Sanity cap on parsed counts: no dataset has a billion columns. */
constexpr std::uint64_t kMaxReasonableColumns = 1u << 20;

void
putLe(std::string &bytes, const void *data, std::size_t n)
{
    // Little-endian hosts only (asserted below); memcpy keeps the
    // encoders free of per-byte shifting noise.
    static_assert(std::endian::native == std::endian::little,
                  "binary_io assumes a little-endian host");
    bytes.append(static_cast<const char *>(data), n);
}

} // namespace

std::uint64_t
fnv1a64(std::string_view bytes, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    for (unsigned char c : bytes) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
ByteSink::putU8(std::uint8_t v)
{
    putLe(bytes_, &v, sizeof v);
}

void
ByteSink::putU32(std::uint32_t v)
{
    putLe(bytes_, &v, sizeof v);
}

void
ByteSink::putU64(std::uint64_t v)
{
    putLe(bytes_, &v, sizeof v);
}

void
ByteSink::putDouble(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(bits);
}

void
ByteSink::putString(std::string_view s)
{
    putU64(s.size());
    bytes_.append(s);
}

bool
ByteParser::take(void *out, std::size_t n)
{
    if (!ok_ || n > bytes_.size() - pos_) {
        ok_ = false;
        std::memset(out, 0, n);
        return false;
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
}

bool
ByteParser::getU8(std::uint8_t &v)
{
    return take(&v, sizeof v);
}

bool
ByteParser::getU32(std::uint32_t &v)
{
    return take(&v, sizeof v);
}

bool
ByteParser::getU64(std::uint64_t &v)
{
    return take(&v, sizeof v);
}

bool
ByteParser::getDouble(double &v)
{
    std::uint64_t bits = 0;
    if (!getU64(bits)) {
        v = 0.0;
        return false;
    }
    std::memcpy(&v, &bits, sizeof v);
    return true;
}

bool
ByteParser::getString(std::string &s)
{
    std::uint64_t size = 0;
    s.clear();
    if (!getU64(size) || size > bytes_.size() - pos_) {
        ok_ = false;
        return false;
    }
    s.assign(bytes_.data() + pos_, size);
    pos_ += size;
    return true;
}

void
writeEnvelope(std::ostream &out, std::string_view magic8,
              std::uint32_t version, std::string_view payload)
{
    wct_assert(magic8.size() == 8, "envelope magic must be 8 bytes");
    out.write(magic8.data(), 8);
    out.write(reinterpret_cast<const char *>(&version),
              sizeof version);
    const std::uint64_t size = payload.size();
    out.write(reinterpret_cast<const char *>(&size), sizeof size);
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    const std::uint64_t checksum = fnv1a64(payload);
    out.write(reinterpret_cast<const char *>(&checksum),
              sizeof checksum);
}

std::optional<std::string>
readEnvelope(std::istream &in, std::string_view magic8,
             std::uint32_t version, std::uint64_t maxPayload)
{
    wct_assert(magic8.size() == 8, "envelope magic must be 8 bytes");
    char magic[8];
    if (!in.read(magic, 8) ||
        std::string_view(magic, 8) != magic8)
        return std::nullopt;
    std::uint32_t file_version = 0;
    if (!in.read(reinterpret_cast<char *>(&file_version),
                 sizeof file_version) ||
        file_version != version)
        return std::nullopt;
    std::uint64_t size = 0;
    if (!in.read(reinterpret_cast<char *>(&size), sizeof size))
        return std::nullopt;
    // Refuse oversized claims before allocating (a corrupt or
    // hostile length field must not turn into a bad_alloc).
    if (size > maxPayload)
        return std::nullopt;
    std::string payload(size, '\0');
    if (size > 0 &&
        !in.read(payload.data(), static_cast<std::streamsize>(size)))
        return std::nullopt;
    std::uint64_t checksum = 0;
    if (!in.read(reinterpret_cast<char *>(&checksum),
                 sizeof checksum) ||
        checksum != fnv1a64(payload))
        return std::nullopt;
    return payload;
}

void
appendDataset(ByteSink &sink, const Dataset &data)
{
    sink.putU64(data.numColumns());
    for (const std::string &name : data.columnNames())
        sink.putString(name);
    sink.putU64(data.numRows());
    for (std::size_t r = 0; r < data.numRows(); ++r)
        for (double v : data.row(r))
            sink.putDouble(v);
}

std::optional<Dataset>
parseDataset(ByteParser &parser)
{
    std::uint64_t cols = 0;
    if (!parser.getU64(cols) || cols == 0 ||
        cols > kMaxReasonableColumns)
        return std::nullopt;
    std::vector<std::string> names(cols);
    for (auto &name : names)
        if (!parser.getString(name) || name.empty())
            return std::nullopt;
    std::uint64_t rows = 0;
    if (!parser.getU64(rows))
        return std::nullopt;
    // Every row still has to be present as cols*8 payload bytes, so
    // a claimed count the remaining bytes cannot hold is rejected
    // here — before reserveRows turns it into a giant allocation.
    // (cols <= 2^20, so the divisor never overflows.)
    if (rows > parser.remaining() / (cols * sizeof(double)))
        return std::nullopt;
    Dataset data(std::move(names));
    data.reserveRows(rows);
    std::vector<double> row(cols);
    for (std::uint64_t r = 0; r < rows; ++r) {
        for (auto &v : row)
            if (!parser.getDouble(v))
                return std::nullopt;
        data.addRow(row);
    }
    return data;
}

void
writeDatasetBinary(std::ostream &out, const Dataset &data)
{
    ByteSink sink;
    appendDataset(sink, data);
    writeEnvelope(out, std::string_view(kDatasetMagic, 8),
                  kDatasetFormatVersion, sink.bytes());
}

std::optional<Dataset>
readDatasetBinary(std::istream &in)
{
    const auto payload = readEnvelope(
        in, std::string_view(kDatasetMagic, 8), kDatasetFormatVersion,
        kMaxFilePayload);
    if (!payload)
        return std::nullopt;
    ByteParser parser(*payload);
    auto data = parseDataset(parser);
    if (!data || !parser.atEnd())
        return std::nullopt;
    return data;
}

} // namespace wct
