#include "uarch/core.hh"

#include <algorithm>

#include "util/logging.hh"

namespace wct
{

CoreModel::CoreModel(const CoreConfig &config)
    : config_(config), l1d_(config.l1d), l1i_(config.l1i),
      l2_(config.l2), dtlb_(config.dtlb), itlb_(config.itlb),
      branch_(config.branch), stores_(config.storeBuffer)
{
    wct_assert(config.issueWidth > 0.0, "issue width must be positive");
    prefetchSlots_.resize(config.prefetchStreams);
    clearCounts(counts_);
}

void
CoreModel::serviceLongMiss(double penalty, bool dependent)
{
    if (dependent) {
        // Serialise behind the youngest outstanding miss, then pay the
        // full latency (pointer-chase behaviour).
        const double start = std::max(cycles_, missComplete_);
        cycles_ = start + penalty;
        missComplete_ = cycles_;
        return;
    }
    if (cycles_ < missComplete_) {
        // Overlaps an outstanding miss: bandwidth-shared service.
        missComplete_ += penalty / config_.mlpFactor;
    } else {
        missComplete_ = cycles_ + penalty;
    }
    // The reorder window bounds how far execution runs ahead of the
    // oldest outstanding miss.
    cycles_ = std::max(cycles_, missComplete_ - config_.robWindowCycles);
}

void
CoreModel::notePrefetcher(std::uint64_t addr)
{
    if (!config_.prefetchEnabled || prefetchSlots_.empty())
        return;
    const std::uint64_t line = addr / config_.l2.lineBytes;
    ++prefetchTick_;

    // Match the miss against a tracked stream (the line after, or a
    // re-touch of, a slot's last line).
    StreamSlot *slot = nullptr;
    StreamSlot *lru = &prefetchSlots_.front();
    for (StreamSlot &candidate : prefetchSlots_) {
        if (line == candidate.lastLine + 1 ||
            line == candidate.lastLine) {
            slot = &candidate;
            break;
        }
        if (candidate.lastUse < lru->lastUse)
            lru = &candidate;
    }
    if (slot == nullptr) {
        // New potential stream displaces the least recently used.
        lru->lastLine = line;
        lru->lastUse = prefetchTick_;
        lru->streak = 0;
        return;
    }
    if (line == slot->lastLine + 1 &&
        slot->streak < config_.prefetchStreak) {
        ++slot->streak;
    }
    slot->lastLine = line;
    slot->lastUse = prefetchTick_;
    if (slot->streak >= config_.prefetchStreak) {
        // Fetch ahead into the L2; each prefetch occupies a slice of
        // memory bandwidth on the outstanding-miss horizon.
        for (std::uint32_t k = 1; k <= config_.prefetchDepth; ++k) {
            const std::uint64_t target =
                (line + k) * config_.l2.lineBytes;
            if (!l2_.access(target)) {
                missComplete_ = std::max(missComplete_, cycles_) +
                    config_.l2MissCycles /
                        config_.prefetchBandwidthDivisor;
            }
        }
    }
}

void
CoreModel::executeLoad(const Inst &inst)
{
    bump(counts_, Event::Load);

    // Interaction with older buffered stores.
    switch (stores_.checkLoad(inst, now_)) {
      case LoadBlock::Sta:
        bump(counts_, Event::LdBlkSta);
        cycles_ += config_.ldBlkStaCycles;
        break;
      case LoadBlock::Std:
        bump(counts_, Event::LdBlkStd);
        cycles_ += config_.ldBlkStdCycles;
        break;
      case LoadBlock::Overlap:
        bump(counts_, Event::LdBlkOlp);
        cycles_ += config_.ldBlkOlpCycles;
        break;
      case LoadBlock::Forwarded:
        // Forwarded loads do not touch the memory hierarchy.
        return;
      case LoadBlock::None:
        break;
    }

    // Alignment handling.
    if (l1d_.splitsLine(inst.addr, inst.size)) {
        bump(counts_, Event::SplitLoad);
        bump(counts_, Event::Misalign);
        cycles_ += config_.splitCycles;
    } else if (inst.size != 0 && (inst.addr % inst.size) != 0) {
        bump(counts_, Event::Misalign);
        cycles_ += config_.misalignCycles;
    }

    // Translation.
    const TlbResult tlb = dtlb_.access(inst.addr);
    if (tlb.miss) {
        bump(counts_, Event::DtlbMiss);
        bump(counts_, Event::PageWalk);
        cycles_ += tlb.walkLatency;
    }

    // Data hierarchy.
    if (!l1d_.access(inst.addr)) {
        bump(counts_, Event::L1DMiss);
        const bool l2_hit = l2_.access(inst.addr);
        notePrefetcher(inst.addr);
        if (!l2_hit) {
            bump(counts_, Event::L2Miss);
            serviceLongMiss(config_.l2MissCycles, inst.dependent());
        } else {
            cycles_ += inst.dependent()
                ? config_.l1dMissCycles
                : config_.l1dMissCycles * config_.l1dMissExposed;
        }
    }
}

void
CoreModel::executeStore(const Inst &inst)
{
    bump(counts_, Event::Store);
    stores_.recordStore(inst, now_);

    if (l1d_.splitsLine(inst.addr, inst.size)) {
        bump(counts_, Event::SplitStore);
        bump(counts_, Event::Misalign);
        cycles_ += config_.splitCycles;
    } else if (inst.size != 0 && (inst.addr % inst.size) != 0) {
        bump(counts_, Event::Misalign);
        cycles_ += config_.misalignCycles;
    }

    const TlbResult tlb = dtlb_.access(inst.addr);
    if (tlb.miss) {
        bump(counts_, Event::DtlbMiss);
        bump(counts_, Event::PageWalk);
        cycles_ += tlb.walkLatency;
    }

    // Stores retire through the write buffer; misses cost little
    // directly (write-allocate fill happens off the critical path),
    // but they do install lines and consume L2/memory state.
    if (!l1d_.access(inst.addr)) {
        bump(counts_, Event::L1DMiss);
        const bool l2_hit = l2_.access(inst.addr);
        notePrefetcher(inst.addr);
        if (!l2_hit) {
            bump(counts_, Event::L2Miss);
            // A store miss occupies memory bandwidth.
            serviceLongMiss(config_.l2MissCycles * 0.25, false);
        } else {
            cycles_ += config_.l1dMissCycles * 0.15;
        }
    }
}

void
CoreModel::execute(const Inst &inst)
{
    ++retired_;
    ++now_;
    bump(counts_, Event::Instructions);

    // Base issue slot.
    cycles_ += 1.0 / config_.issueWidth;

    // Front end: one L1I probe per instruction, with instruction-
    // side translation (ITLB walks count as page walks but not as
    // DTLB misses).
    const TlbResult itlb = itlb_.access(inst.pc);
    if (itlb.miss) {
        bump(counts_, Event::PageWalk);
        cycles_ += itlb.walkLatency;
    }
    if (!l1i_.access(inst.pc)) {
        bump(counts_, Event::L1IMiss);
        if (!l2_.access(inst.pc))
            cycles_ += config_.l2iMissCycles;
        else
            cycles_ += config_.l1iMissCycles;
    }

    if (inst.fpAssist()) {
        bump(counts_, Event::FpAssist);
        cycles_ += config_.fpAssistCycles;
    }

    switch (inst.cls) {
      case InstClass::Alu:
        break;
      case InstClass::Load:
        executeLoad(inst);
        break;
      case InstClass::Store:
        executeStore(inst);
        break;
      case InstClass::Branch:
        bump(counts_, Event::Br);
        if (!branch_.predict(inst.pc, inst.taken())) {
            bump(counts_, Event::BrMispred);
            cycles_ += config_.mispredictCycles;
        }
        break;
      case InstClass::Mul:
        bump(counts_, Event::Mul);
        cycles_ += config_.mulExtraCycles;
        break;
      case InstClass::Div:
        bump(counts_, Event::Div);
        cycles_ += config_.divExtraCycles;
        break;
      case InstClass::Simd:
        bump(counts_, Event::Simd);
        cycles_ += config_.simdExtraCycles;
        break;
    }

    // Keep the cycle counters in sync with the charged time.
    const auto cyc = static_cast<std::uint64_t>(cycles_);
    counts_[static_cast<std::size_t>(Event::Cycles)] = cyc;
    counts_[static_cast<std::size_t>(Event::CyclesRef)] = cyc;
}

void
CoreModel::run(InstSource &source, std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i)
        execute(source.next());
}

void
CoreModel::resetCounts()
{
    clearCounts(counts_);
    // Re-base time so the next window starts at zero cycles while the
    // outstanding-miss horizon keeps its relative position.
    missComplete_ = std::max(0.0, missComplete_ - cycles_);
    cycles_ = 0.0;
    retired_ = 0;
}

void
CoreModel::resetAll()
{
    resetCounts();
    l1d_.reset();
    l1i_.reset();
    l2_.reset();
    dtlb_.reset();
    itlb_.reset();
    branch_.reset();
    stores_.reset();
    now_ = 0;
    missComplete_ = 0.0;
    for (StreamSlot &slot : prefetchSlots_)
        slot = StreamSlot{};
    prefetchTick_ = 0;
}

double
CoreModel::cpi() const
{
    return retired_ == 0
        ? 0.0 : cycles_ / static_cast<double>(retired_);
}

} // namespace wct
