/**
 * @file
 * Core2-like behavioural timing model.
 *
 * The core walks an abstract instruction stream, drives the cache,
 * TLB, branch-predictor, and store-buffer models, charges latency for
 * every microarchitectural event, and counts the PMU events of
 * Table I. CPI therefore *emerges* from structural interactions (miss
 * chains, walk costs, blocked loads) rather than from any planted
 * formula — the regression pipeline has a real function to discover.
 *
 * Miss-level parallelism is modelled through the dataflow flags on
 * instructions: dependent loads serialise behind the youngest
 * outstanding long miss, while independent misses overlap under a
 * reorder-window and bandwidth constraint. This is what produces the
 * strongly phase-dependent cost-per-event the paper observes (e.g.,
 * an L2 miss costing 63 cycles in one leaf model and 1172 in another).
 */

#ifndef WCT_UARCH_CORE_HH
#define WCT_UARCH_CORE_HH

#include <cstdint>
#include <vector>

#include "pmu/events.hh"
#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "uarch/store_buffer.hh"
#include "uarch/tlb.hh"
#include "uarch/types.hh"

namespace wct
{

/** Full machine configuration with Core2-Duo-like defaults. */
struct CoreConfig
{
    CacheConfig l1d{32 * 1024, 64, 8};
    CacheConfig l1i{32 * 1024, 64, 8};
    CacheConfig l2{4 * 1024 * 1024, 64, 16};
    TlbConfig dtlb{};

    /** Instruction TLB (page walks count, misses are not DtlbMiss). */
    TlbConfig itlb{4096, 128, 4, 42.0, 20.0, 8};
    BranchPredictorConfig branch{};
    StoreBufferConfig storeBuffer{};

    /** Sustained issue width (instructions per cycle). */
    double issueWidth = 4.0;

    /** Extra cycles charged per multiply (mostly pipelined). */
    double mulExtraCycles = 0.25;

    /** Extra cycles per divide (unpipelined long op). */
    double divExtraCycles = 18.0;

    /** Extra cycles per SIMD op (decode/port pressure). */
    double simdExtraCycles = 0.05;

    /** L1D miss serviced by the L2 (load-to-use penalty). */
    double l1dMissCycles = 12.0;

    /** Fraction of an L1D-miss penalty exposed for independent loads. */
    double l1dMissExposed = 0.35;

    /** L2 miss serviced by memory. */
    double l2MissCycles = 180.0;

    /** L1I miss serviced by the L2 (front-end stall). */
    double l1iMissCycles = 10.0;

    /** Instruction fetch missing the L2 as well. */
    double l2iMissCycles = 150.0;

    /** Pipeline restart after a branch mispredict. */
    double mispredictCycles = 14.0;

    /** Load blocked until an unknown store address resolves. */
    double ldBlkStaCycles = 6.0;

    /** Load blocked until forwarding store data is ready. */
    double ldBlkStdCycles = 9.0;

    /** Load blocked until an overlapping/aliased store retires. */
    double ldBlkOlpCycles = 12.0;

    /** Extra cycles for a line-splitting load or store. */
    double splitCycles = 9.0;

    /** Extra cycles for a misaligned (non-splitting) access. */
    double misalignCycles = 1.5;

    /** Microcode assist for denormal/exceptional FP operands. */
    double fpAssistCycles = 160.0;

    /**
     * Reorder-window depth in cycles: how far execution can run ahead
     * of the oldest outstanding memory miss.
     */
    double robWindowCycles = 32.0;

    /**
     * Effective bandwidth share for overlapping independent misses: an
     * extra miss under an outstanding one occupies l2MissCycles / mlp
     * of the memory system.
     */
    double mlpFactor = 8.0;

    // ---- L2 stream prefetcher (Core 2's DPL). ----
    /** Enable the L2 streaming prefetcher. */
    bool prefetchEnabled = true;

    /** Consecutive-line misses required to confirm a stream. */
    std::uint32_t prefetchStreak = 2;

    /** Concurrently tracked streams (DPL tracked multiple). */
    std::uint32_t prefetchStreams = 8;

    /** Lines fetched ahead of a confirmed stream. */
    std::uint32_t prefetchDepth = 4;

    /**
     * Bandwidth cost of one prefetched line, as a divisor of
     * l2MissCycles added to the outstanding-miss horizon.
     */
    double prefetchBandwidthDivisor = 16.0;
};

/** Behavioural core: executes instructions, counts events and cycles. */
class CoreModel
{
  public:
    explicit CoreModel(const CoreConfig &config);

    /** Execute one instruction, charging cycles and counting events. */
    void execute(const Inst &inst);

    /** Pull and execute n instructions from a source. */
    void run(InstSource &source, std::uint64_t n);

    /**
     * Zero the event counts and the cycle accumulator while keeping
     * cache/TLB/predictor state warm — the per-interval sampling mode
     * of the PMU collector.
     */
    void resetCounts();

    /** Cold reset: counts and all microarchitectural state. */
    void resetAll();

    const EventCounts &counts() const { return counts_; }
    double cycles() const { return cycles_; }
    std::uint64_t instructionsRetired() const { return retired_; }

    /** Cycles per instruction over the counted window. */
    double cpi() const;

    const CoreConfig &config() const { return config_; }

    // Structural components exposed for inspection and tests.
    const CacheModel &l1d() const { return l1d_; }
    const CacheModel &l1i() const { return l1i_; }
    const CacheModel &l2() const { return l2_; }
    const TlbModel &dtlb() const { return dtlb_; }
    const TlbModel &itlb() const { return itlb_; }
    const BranchPredictor &branchPredictor() const { return branch_; }

  private:
    /** Charge a long memory miss honouring dependence and overlap. */
    void serviceLongMiss(double penalty, bool dependent);

    void executeLoad(const Inst &inst);
    void executeStore(const Inst &inst);

    CoreConfig config_;
    CacheModel l1d_;
    CacheModel l1i_;
    CacheModel l2_;
    TlbModel dtlb_;
    TlbModel itlb_;
    BranchPredictor branch_;
    StoreBuffer stores_;

    EventCounts counts_{};
    double cycles_ = 0.0;
    std::uint64_t retired_ = 0;

    /** Global instruction index (store-buffer age base). */
    std::uint64_t now_ = 0;

    /** Completion time of the youngest outstanding long miss. */
    double missComplete_ = 0.0;

    /** One tracked stream in the prefetcher. */
    struct StreamSlot
    {
        std::uint64_t lastLine = ~std::uint64_t(0);
        std::uint64_t lastUse = 0;
        std::uint32_t streak = 0;
    };

    /** Stream prefetcher slots (LRU-allocated). */
    std::vector<StreamSlot> prefetchSlots_;
    std::uint64_t prefetchTick_ = 0;

    /** Feed one L1D miss to the stream detector. */
    void notePrefetcher(std::uint64_t addr);
};

} // namespace wct

#endif // WCT_UARCH_CORE_HH
