#include "uarch/branch.hh"

#include "util/logging.hh"

namespace wct
{

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config)
    : config_(config)
{
    wct_assert(config.tableBits >= 4 && config.tableBits <= 24,
               "unreasonable gshare table bits ", config.tableBits);
    wct_assert(config.historyBits <= config.tableBits,
               "history bits ", config.historyBits,
               " exceed table bits ", config.tableBits);
    counters_.assign(std::size_t(1) << config.tableBits, 2);
    indexMask_ = (std::uint64_t(1) << config.tableBits) - 1;
    historyMask_ = config.historyBits == 0
        ? 0 : (std::uint64_t(1) << config.historyBits) - 1;
}

bool
BranchPredictor::predict(std::uint64_t pc, bool taken)
{
    ++branches_;
    // Fold the PC to decorrelate low-entropy strides before xoring in
    // the global history.
    const std::uint64_t folded = (pc >> 2) ^ (pc >> 13);
    const std::uint64_t index =
        (folded ^ (history_ & historyMask_)) & indexMask_;
    std::uint8_t &counter = counters_[index];
    const bool predicted_taken = counter >= 2;

    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
    history_ = (history_ << 1) | (taken ? 1 : 0);

    const bool correct = predicted_taken == taken;
    if (!correct)
        ++mispredicts_;
    return correct;
}

void
BranchPredictor::reset()
{
    counters_.assign(counters_.size(), 2);
    history_ = 0;
    branches_ = 0;
    mispredicts_ = 0;
}

double
BranchPredictor::mispredictRate() const
{
    return branches_ == 0
        ? 0.0
        : static_cast<double>(mispredicts_) /
            static_cast<double>(branches_);
}

} // namespace wct
