/**
 * @file
 * Store buffer model detecting the load-block conditions of Table I:
 * LOAD_BLOCK.STA (unknown store address), LOAD_BLOCK.STD (unready
 * store data), and LOAD_BLOCK.OVERLAP_STORE (partial overlap or 4 KB
 * aliasing that forbids store-to-load forwarding until retirement).
 */

#ifndef WCT_UARCH_STORE_BUFFER_HH
#define WCT_UARCH_STORE_BUFFER_HH

#include <cstdint>
#include <vector>

#include "uarch/types.hh"

namespace wct
{

/** Store buffer depth and resolution timing, in instruction counts. */
struct StoreBufferConfig
{
    /** Buffered (not yet retired) stores visible to younger loads. */
    std::uint32_t entries = 20;

    /** Instructions after which a store retires out of the buffer. */
    std::uint32_t lifetime = 16;

    /** Age below which a slow-address store's address is unknown. */
    std::uint32_t staResolveAge = 4;

    /** Age below which a slow-data store's data is not ready. */
    std::uint32_t stdResolveAge = 10;
};

/** How a load interacted with older buffered stores. */
enum class LoadBlock : std::uint8_t
{
    None,      ///< No interaction with buffered stores
    Forwarded, ///< Fully covered by a ready store: free forwarding
    Sta,       ///< Blocked: older store address unknown
    Std,       ///< Blocked: forwarding store's data not ready
    Overlap,   ///< Blocked: partial overlap or 4 KB alias
};

/** FIFO of in-flight stores with block-condition checks. */
class StoreBuffer
{
  public:
    explicit StoreBuffer(const StoreBufferConfig &config);

    /** Insert a store issued at instruction index now. */
    void recordStore(const Inst &store, std::uint64_t now);

    /**
     * Check a load issued at instruction index now against older
     * buffered stores; youngest conflicting store wins.
     */
    LoadBlock checkLoad(const Inst &load, std::uint64_t now) const;

    /** Drop all buffered stores. */
    void reset();

    const StoreBufferConfig &config() const { return config_; }

  private:
    struct Entry
    {
        std::uint64_t addr = 0;
        std::uint64_t bornAt = 0;
        std::uint8_t size = 0;
        bool slowAddress = false;
        bool slowData = false;
        bool valid = false;
    };

    StoreBufferConfig config_;
    std::vector<Entry> ring_;
    std::size_t head_ = 0; ///< next slot to fill
};

} // namespace wct

#endif // WCT_UARCH_STORE_BUFFER_HH
