#include "uarch/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace wct
{

CacheModel::CacheModel(const CacheConfig &config)
    : config_(config)
{
    wct_assert(config.lineBytes > 0 &&
               std::has_single_bit(config.lineBytes),
               "line size must be a power of two, got ",
               config.lineBytes);
    wct_assert(config.ways > 0, "cache needs at least one way");
    wct_assert(config.sizeBytes % (config.lineBytes * config.ways) == 0,
               "capacity ", config.sizeBytes,
               " not divisible by way size");
    if (config.policy == ReplacementPolicy::TreePlru) {
        wct_assert(std::has_single_bit(config.ways),
                   "tree-PLRU needs a power-of-two way count, got ",
                   config.ways);
    }

    numSets_ = config.sizeBytes / (config.lineBytes * config.ways);
    wct_assert(numSets_ > 0 && std::has_single_bit(numSets_),
               "number of sets must be a power of two, got ", numSets_);
    lineShift_ = std::countr_zero(config.lineBytes);
    lines_.resize(numSets_ * config.ways);
    if (config.policy == ReplacementPolicy::TreePlru)
        plruBits_.assign(numSets_, 0);
}

std::uint32_t
CacheModel::victimWay(std::uint64_t set)
{
    Line *base = &lines_[set * config_.ways];

    // Invalid ways are always preferred, regardless of policy.
    for (std::uint32_t w = 0; w < config_.ways; ++w)
        if (!base[w].valid)
            return w;

    switch (config_.policy) {
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        // Smallest stamp: least recently used, or oldest fill.
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < config_.ways; ++w)
            if (base[w].stamp < base[victim].stamp)
                victim = w;
        return victim;
      }
      case ReplacementPolicy::Random: {
        // xorshift64: deterministic, independent of the Rng layer.
        rngState_ ^= rngState_ << 13;
        rngState_ ^= rngState_ >> 7;
        rngState_ ^= rngState_ << 17;
        return static_cast<std::uint32_t>(rngState_ % config_.ways);
      }
      case ReplacementPolicy::TreePlru: {
        // Follow the PLRU bits from the root: bit==0 means the left
        // subtree is older.
        const std::uint32_t bits = plruBits_[set];
        std::uint32_t node = 1; // 1-based heap index
        while (node < config_.ways) {
            const bool go_right = ((bits >> (node - 1)) & 1) == 0;
            node = node * 2 + (go_right ? 1 : 0);
        }
        return node - config_.ways;
      }
    }
    wct_panic("unreachable replacement policy");
}

void
CacheModel::touch(std::uint64_t set, std::uint32_t way, bool fill)
{
    Line &line = lines_[set * config_.ways + way];
    switch (config_.policy) {
      case ReplacementPolicy::Lru:
        line.stamp = tick_;
        break;
      case ReplacementPolicy::Fifo:
        if (fill)
            line.stamp = tick_;
        break;
      case ReplacementPolicy::Random:
        break;
      case ReplacementPolicy::TreePlru: {
        // Flip the path bits to point away from this way.
        std::uint32_t bits = plruBits_[set];
        std::uint32_t node = way + config_.ways;
        while (node > 1) {
            const bool is_right = (node & 1) != 0;
            node /= 2;
            const std::uint32_t mask = 1u << (node - 1);
            // Mark the *other* side as the older one.
            if (is_right)
                bits |= mask; // right just used: left is older -> 1?
            else
                bits &= ~mask;
        }
        // Convention: bit==0 -> victim search goes right, so a hit on
        // the right sets the bit (next victim left) and vice versa.
        plruBits_[set] = bits;
        break;
      }
    }
}

bool
CacheModel::access(std::uint64_t addr)
{
    ++accesses_;
    ++tick_;
    const std::uint64_t block = addr >> lineShift_;
    const std::uint64_t set = block & (numSets_ - 1);
    const std::uint64_t tag = block >> std::countr_zero(numSets_);
    Line *base = &lines_[set * config_.ways];

    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            touch(set, w, /*fill=*/false);
            return true;
        }
    }

    ++misses_;
    const std::uint32_t victim = victimWay(set);
    base[victim].valid = true;
    base[victim].tag = tag;
    touch(set, victim, /*fill=*/true);
    return false;
}

bool
CacheModel::contains(std::uint64_t addr) const
{
    const std::uint64_t block = addr >> lineShift_;
    const std::uint64_t set = block & (numSets_ - 1);
    const std::uint64_t tag = block >> std::countr_zero(numSets_);
    const Line *base = &lines_[set * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
CacheModel::reset()
{
    for (Line &line : lines_)
        line = Line{};
    if (config_.policy == ReplacementPolicy::TreePlru)
        plruBits_.assign(numSets_, 0);
    tick_ = 0;
    rngState_ = 0x9e3779b97f4a7c15ull;
    accesses_ = 0;
    misses_ = 0;
}

double
CacheModel::missRate() const
{
    return accesses_ == 0
        ? 0.0
        : static_cast<double>(misses_) / static_cast<double>(accesses_);
}

} // namespace wct
