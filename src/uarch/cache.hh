/**
 * @file
 * Set-associative cache model with pluggable replacement policies.
 *
 * Models only hit/miss behaviour (tag state), which is all the PMU
 * characterization needs; latencies are charged by the core model.
 * Four replacement policies are provided so the machine-sensitivity
 * ablation can vary the platform under the models (Section III of
 * the paper notes its results are specific to the measured
 * architecture).
 */

#ifndef WCT_UARCH_CACHE_HH
#define WCT_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

namespace wct
{

/** Victim selection strategy. */
enum class ReplacementPolicy : std::uint8_t
{
    Lru,      ///< true least-recently-used
    Fifo,     ///< oldest fill evicted, hits do not promote
    Random,   ///< uniform victim (deterministic xorshift stream)
    TreePlru, ///< binary-tree pseudo-LRU (ways must be a power of 2)
};

/** Geometry of one cache level. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 32 * 1024;

    /** Line size in bytes (power of two). */
    std::uint32_t lineBytes = 64;

    /** Set associativity. */
    std::uint32_t ways = 8;

    /** Victim selection policy. */
    ReplacementPolicy policy = ReplacementPolicy::Lru;
};

/**
 * A single cache level. Thread-compatible (no internal locking): each
 * simulated core owns its private levels; the shared L2 of the paper's
 * dual-core machine is modelled per-core because the benchmarks were
 * run one at a time.
 */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &config);

    /**
     * Look up the line containing addr, filling on miss.
     * @return true on hit.
     */
    bool access(std::uint64_t addr);

    /** Hit/miss lookup for a probe without changing state. */
    bool contains(std::uint64_t addr) const;

    /** Invalidate all lines. */
    void reset();

    const CacheConfig &config() const { return config_; }
    std::uint64_t numSets() const { return numSets_; }
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

    /** Misses divided by accesses (0 when idle). */
    double missRate() const;

    /** True when [addr, addr+size) touches more than one line. */
    bool
    splitsLine(std::uint64_t addr, std::uint32_t size) const
    {
        if (size == 0)
            return false;
        return (addr / config_.lineBytes) !=
            ((addr + size - 1) / config_.lineBytes);
    }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t stamp = 0; ///< LRU: last use; FIFO: fill time
        bool valid = false;
    };

    /** Pick the victim way in a full set. */
    std::uint32_t victimWay(std::uint64_t set);

    /** Update policy state after an access hit/fill at a way. */
    void touch(std::uint64_t set, std::uint32_t way, bool fill);

    CacheConfig config_;
    std::uint64_t numSets_;
    std::uint64_t lineShift_;
    std::vector<Line> lines_; ///< numSets_ x ways, row-major
    std::vector<std::uint32_t> plruBits_; ///< one tree per set
    std::uint64_t tick_ = 0;
    std::uint64_t rngState_ = 0x9e3779b97f4a7c15ull;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace wct

#endif // WCT_UARCH_CACHE_HH
