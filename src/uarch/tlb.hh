/**
 * @file
 * Data TLB model with a hardware page walker and a small paging-
 * structure (PDE) cache that shortens repeat walks within the same
 * page-table page, as on Core 2.
 */

#ifndef WCT_UARCH_TLB_HH
#define WCT_UARCH_TLB_HH

#include <cstdint>
#include <vector>

#include "uarch/cache.hh"

namespace wct
{

/** TLB geometry and walk costs. */
struct TlbConfig
{
    /** Page size in bytes (power of two). */
    std::uint32_t pageBytes = 4096;

    /** Number of entries. */
    std::uint32_t entries = 256;

    /** Set associativity. */
    std::uint32_t ways = 4;

    /** Walk latency in cycles when the PDE cache misses. */
    double walkCycles = 42.0;

    /** Walk latency in cycles when the PDE cache hits. */
    double shortWalkCycles = 20.0;

    /** Entries in the PDE cache (each covers 2 MB of address space). */
    std::uint32_t pdeEntries = 8;
};

/** Outcome of one TLB lookup. */
struct TlbResult
{
    bool miss = false;         ///< DTLB_MISSES.ANY fired
    bool walk = false;         ///< PAGE_WALKS.COUNT fired
    double walkLatency = 0.0;  ///< cycles charged for the walk
};

/**
 * A translation lookaside buffer. Every miss triggers a hardware page
 * walk; the walk is cheaper when the covering PDE entry is cached.
 */
class TlbModel
{
  public:
    explicit TlbModel(const TlbConfig &config);

    /** Translate the page containing addr. */
    TlbResult access(std::uint64_t addr);

    /** Drop all translations (context switch). */
    void reset();

    const TlbConfig &config() const { return config_; }
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    double missRate() const;

  private:
    TlbConfig config_;
    CacheModel tlb_;      ///< reuses the tag array for page tracking
    CacheModel pdeCache_; ///< 2 MB-granular paging-structure cache
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;

    static CacheConfig tlbGeometry(const TlbConfig &config);
    static CacheConfig pdeGeometry(const TlbConfig &config);
};

} // namespace wct

#endif // WCT_UARCH_TLB_HH
