/**
 * @file
 * Abstract instruction descriptors exchanged between the synthetic
 * workload generators and the core timing model.
 *
 * The simulator is behavioural, not functional: an instruction carries
 * only the attributes that influence timing and PMU events — its
 * class, program counter, memory target, and a few dataflow flags the
 * generator derives from the workload's dependence structure.
 */

#ifndef WCT_UARCH_TYPES_HH
#define WCT_UARCH_TYPES_HH

#include <cstdint>

namespace wct
{

/** Instruction classes with distinct timing/event behaviour. */
enum class InstClass : std::uint8_t
{
    Alu,    ///< Simple integer/fp op, fully pipelined
    Load,   ///< Memory read
    Store,  ///< Memory write
    Branch, ///< Conditional or indirect branch
    Mul,    ///< Multiply (pipelined, small extra latency)
    Div,    ///< Divide (unpipelined, long latency)
    Simd,   ///< Streaming SIMD op
};

/** Dataflow and behaviour flags attached to an instruction. */
enum InstFlag : std::uint8_t
{
    /** Branch outcome is taken. */
    kFlagTaken = 1 << 0,

    /**
     * The instruction consumes the result of the most recent load,
     * serialising behind outstanding cache misses (pointer chasing).
     */
    kFlagDependent = 1 << 1,

    /** Store address comes from a long dependence chain (late STA). */
    kFlagSlowAddress = 1 << 2,

    /** Store data comes from a long dependence chain (late STD). */
    kFlagSlowData = 1 << 3,

    /** Floating point op requires a microcode assist. */
    kFlagFpAssist = 1 << 4,
};

/** One abstract instruction. */
struct Inst
{
    /** Program counter (drives the L1I model). */
    std::uint64_t pc = 0;

    /** Virtual byte address for loads/stores; 0 otherwise. */
    std::uint64_t addr = 0;

    InstClass cls = InstClass::Alu;

    /** Access size in bytes for loads/stores. */
    std::uint8_t size = 0;

    /** Bitwise or of InstFlag values. */
    std::uint8_t flags = 0;

    bool taken() const { return flags & kFlagTaken; }
    bool dependent() const { return flags & kFlagDependent; }
    bool slowAddress() const { return flags & kFlagSlowAddress; }
    bool slowData() const { return flags & kFlagSlowData; }
    bool fpAssist() const { return flags & kFlagFpAssist; }

    bool
    isMemory() const
    {
        return cls == InstClass::Load || cls == InstClass::Store;
    }
};

/** Produces the dynamic instruction stream of a workload. */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /** Generate the next dynamic instruction. */
    virtual Inst next() = 0;
};

} // namespace wct

#endif // WCT_UARCH_TYPES_HH
