/**
 * @file
 * Gshare branch direction predictor.
 *
 * Predicts conditional branch directions from the xor of the branch PC
 * and a global history register, backed by a table of two-bit
 * saturating counters — adequate fidelity for reproducing mispredict
 * densities without modelling a full Core 2 front end.
 */

#ifndef WCT_UARCH_BRANCH_HH
#define WCT_UARCH_BRANCH_HH

#include <cstdint>
#include <vector>

namespace wct
{

/** Predictor geometry. */
struct BranchPredictorConfig
{
    /** log2 of the pattern history table size. */
    std::uint32_t tableBits = 14;

    /** Number of global history bits xor-ed into the index. */
    std::uint32_t historyBits = 12;
};

/** Gshare predictor with two-bit saturating counters. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &config);

    /**
     * Predict and train on one branch.
     * @return true when the prediction was correct.
     */
    bool predict(std::uint64_t pc, bool taken);

    /** Forget all learned state. */
    void reset();

    const BranchPredictorConfig &config() const { return config_; }
    std::uint64_t branches() const { return branches_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    double mispredictRate() const;

  private:
    BranchPredictorConfig config_;
    std::vector<std::uint8_t> counters_;
    std::uint64_t history_ = 0;
    std::uint64_t indexMask_;
    std::uint64_t historyMask_;
    std::uint64_t branches_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace wct

#endif // WCT_UARCH_BRANCH_HH
