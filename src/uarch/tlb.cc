#include "uarch/tlb.hh"

#include "util/logging.hh"

namespace wct
{

CacheConfig
TlbModel::tlbGeometry(const TlbConfig &config)
{
    wct_assert(config.entries % config.ways == 0,
               "TLB entries ", config.entries,
               " not divisible by ways ", config.ways);
    CacheConfig geometry;
    geometry.lineBytes = config.pageBytes;
    geometry.ways = config.ways;
    geometry.sizeBytes =
        static_cast<std::uint64_t>(config.entries) * config.pageBytes;
    return geometry;
}

CacheConfig
TlbModel::pdeGeometry(const TlbConfig &config)
{
    // One entry covers a 2 MB region (a full page-table page of 4 KB
    // pages); fully associative.
    CacheConfig geometry;
    geometry.lineBytes = 2 * 1024 * 1024;
    geometry.ways = config.pdeEntries;
    geometry.sizeBytes =
        static_cast<std::uint64_t>(config.pdeEntries) * geometry.lineBytes;
    return geometry;
}

TlbModel::TlbModel(const TlbConfig &config)
    : config_(config), tlb_(tlbGeometry(config)),
      pdeCache_(pdeGeometry(config))
{
}

TlbResult
TlbModel::access(std::uint64_t addr)
{
    ++accesses_;
    TlbResult result;
    if (tlb_.access(addr))
        return result;

    ++misses_;
    result.miss = true;
    result.walk = true;
    // The walker reads the page-table page; a cached PDE shortens it.
    result.walkLatency = pdeCache_.access(addr)
        ? config_.shortWalkCycles : config_.walkCycles;
    return result;
}

void
TlbModel::reset()
{
    tlb_.reset();
    pdeCache_.reset();
    accesses_ = 0;
    misses_ = 0;
}

double
TlbModel::missRate() const
{
    return accesses_ == 0
        ? 0.0
        : static_cast<double>(misses_) / static_cast<double>(accesses_);
}

} // namespace wct
