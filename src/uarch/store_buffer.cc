#include "uarch/store_buffer.hh"

#include "util/logging.hh"

namespace wct
{

namespace
{

constexpr std::uint64_t kPageMask = 0xFFF;

/** Byte ranges [a, a+as) and [b, b+bs) intersect. */
bool
rangesOverlap(std::uint64_t a, std::uint32_t as, std::uint64_t b,
              std::uint32_t bs)
{
    return a < b + bs && b < a + as;
}

} // namespace

StoreBuffer::StoreBuffer(const StoreBufferConfig &config)
    : config_(config)
{
    wct_assert(config.entries > 0, "store buffer needs entries");
    ring_.resize(config.entries);
}

void
StoreBuffer::recordStore(const Inst &store, std::uint64_t now)
{
    wct_assert(store.cls == InstClass::Store,
               "recordStore on a non-store");
    Entry &slot = ring_[head_];
    slot.addr = store.addr;
    slot.bornAt = now;
    slot.size = store.size;
    slot.slowAddress = store.slowAddress();
    slot.slowData = store.slowData();
    slot.valid = true;
    head_ = (head_ + 1) % ring_.size();
}

LoadBlock
StoreBuffer::checkLoad(const Inst &load, std::uint64_t now) const
{
    wct_assert(load.cls == InstClass::Load, "checkLoad on a non-load");

    // Scan youngest first: the nearest older store decides.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const std::size_t idx =
            (head_ + ring_.size() - 1 - i) % ring_.size();
        const Entry &store = ring_[idx];
        if (!store.valid)
            continue;
        const std::uint64_t age = now - store.bornAt;
        if (age >= config_.lifetime)
            continue; // retired

        // An unresolved store address forces conservative blocking
        // when the load might alias it. The disambiguator compares
        // partial address bits, so the check uses page-offset bits.
        if (store.slowAddress && age < config_.staResolveAge) {
            if (((load.addr ^ store.addr) & kPageMask) < 8)
                return LoadBlock::Sta;
            continue;
        }

        if (rangesOverlap(load.addr, load.size, store.addr,
                          store.size)) {
            const bool covers = store.addr <= load.addr &&
                store.addr + store.size >= load.addr + load.size;
            if (!covers)
                return LoadBlock::Overlap;
            if (store.slowData && age < config_.stdResolveAge)
                return LoadBlock::Std;
            return LoadBlock::Forwarded;
        }

        // 4 KB aliasing: equal page offsets on different pages defeat
        // the partial-address disambiguation and stall until retire.
        if ((load.addr & kPageMask) == (store.addr & kPageMask) &&
            load.addr != store.addr) {
            return LoadBlock::Overlap;
        }
    }
    return LoadBlock::None;
}

void
StoreBuffer::reset()
{
    for (Entry &slot : ring_)
        slot.valid = false;
    head_ = 0;
}

} // namespace wct
