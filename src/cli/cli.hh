/**
 * @file
 * The `wct` command line tool: collect PMU samples from the built-in
 * suites, train/save/apply model trees, and run characterization and
 * transferability analyses on CSV data — the workflow of the paper
 * without writing any C++.
 *
 * Commands (see `wct help`):
 *   suites                         list built-in suites/benchmarks
 *   collect  --suite S --out DIR   simulate and write per-benchmark CSVs
 *   train    --data P --out M      train an M5' tree, save it
 *   show     --model M [--dot]     print a saved tree
 *   predict  --model M --data CSV  append a prediction column
 *   transfer --model M --train CSV --target CSV
 *                                  Section VI assessment
 *   profile  --model M --data DIR  Table II-style distribution table
 *   subset   --model M --data DIR --k K [--method ...]
 *                                  representative subset selection
 */

#ifndef WCT_CLI_CLI_HH
#define WCT_CLI_CLI_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace wct
{

/**
 * Run the CLI with pre-split arguments (excluding argv[0]).
 *
 * @return Process exit code (0 on success, 2 on usage errors).
 *         File-level problems use the library's fatal path.
 */
int runCli(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err);

} // namespace wct

#endif // WCT_CLI_CLI_HH
