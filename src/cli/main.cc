/**
 * @file
 * Entry point of the `wct` command line tool.
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return wct::runCli(args, std::cout, std::cerr);
}
