#include "cli/options.hh"

#include <cstdlib>
#include <sstream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace wct::cli
{

namespace
{

const FlagSpec *
findFlag(const CommandSpec &spec, const std::string &name)
{
    for (const FlagSpec &flag : spec.flags)
        if (flag.name == name)
            return &flag;
    return nullptr;
}

std::uint64_t
parseUint(const std::string &name, const std::string &value)
{
    char *end = nullptr;
    const auto parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        wct_fatal("--", name, " expects an integer, got '", value,
                  "'");
    return parsed;
}

double
parseDouble(const std::string &name, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        wct_fatal("--", name, " expects a number, got '", value, "'");
    return parsed;
}

/** Placeholder text of one flag in a usage line. */
std::string
flagUsage(const FlagSpec &flag)
{
    std::string text = "--" + flag.name;
    if (flag.type != FlagType::Bool)
        text += " " +
            (flag.valueName.empty() ? std::string("V")
                                    : flag.valueName);
    return flag.required ? text : "[" + text + "]";
}

} // namespace

bool
ParsedOptions::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
ParsedOptions::get(const std::string &name,
                   const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::uint64_t
ParsedOptions::getUint(const std::string &name,
                       std::uint64_t fallback) const
{
    auto it = uints_.find(name);
    return it == uints_.end() ? fallback : it->second;
}

double
ParsedOptions::getDouble(const std::string &name,
                         double fallback) const
{
    auto it = doubles_.find(name);
    return it == doubles_.end() ? fallback : it->second;
}

ParsedOptions
parseCommand(const CommandSpec &spec,
             const std::vector<std::string> &args, std::size_t begin)
{
    ParsedOptions options;
    for (std::size_t i = begin; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (!startsWith(arg, "--")) {
            options.positional_.push_back(arg);
            continue;
        }
        const std::string name = arg.substr(2);
        const FlagSpec *flag = findFlag(spec, name);
        if (flag == nullptr)
            wct_fatal("unknown option --", name, " for '", spec.name,
                      "'");
        if (flag->type == FlagType::Bool) {
            options.values_[name] = "1";
            continue;
        }
        if (i + 1 >= args.size())
            wct_fatal("--", name, " needs a value");
        const std::string &value = args[++i];
        options.values_[name] = value;
        if (flag->type == FlagType::Uint)
            options.uints_[name] = parseUint(name, value);
        else if (flag->type == FlagType::Double)
            options.doubles_[name] = parseDouble(name, value);
    }

    for (const FlagSpec &flag : spec.flags)
        if (flag.required && !options.has(flag.name))
            wct_fatal("missing required --", flag.name);

    if (options.positional_.size() < spec.minPositionals ||
        options.positional_.size() > spec.maxPositionals) {
        std::string shape;
        for (const std::string &p : spec.positionals)
            shape += " " + p;
        wct_fatal("'", spec.name, "' expects", shape.empty()
                      ? " no positional arguments"
                      : shape);
    }
    return options;
}

std::string
usageText(const CommandSpec &spec)
{
    // "  name POS... required-flags [optional-flags]", wrapped at 70
    // columns with a hanging indent.
    std::vector<std::string> words;
    for (const std::string &p : spec.positionals)
        words.push_back(p);
    for (const FlagSpec &flag : spec.flags)
        if (flag.required)
            words.push_back(flagUsage(flag));
    for (const FlagSpec &flag : spec.flags)
        if (!flag.required)
            words.push_back(flagUsage(flag));

    std::ostringstream out;
    std::string line = "  " + spec.name;
    const std::string indent(spec.name.size() + 4, ' ');
    for (const std::string &word : words) {
        if (line.size() + 1 + word.size() > 70) {
            out << line << "\n";
            line = indent;
        }
        line += " " + word;
    }
    out << line << "\n";
    return std::move(out).str();
}

} // namespace wct::cli
