/**
 * @file
 * Typed command-line option parsing shared by every wct command.
 *
 * Each command declares a CommandSpec — its flags, their types, and
 * which are required — and parseCommand() does the rest: boolean
 * flags take no value, typed flags are validated as they are parsed
 * ("--intervals expects an integer"), required flags are enforced
 * ("missing required --suite"), and unknown flags are fatal instead
 * of being silently swallowed as positionals. The same specs generate
 * the usage text, so `wct help` can never drift from what the parser
 * accepts. (Before this existed, every command re-implemented its own
 * subset of this logic against a stringly-typed map.)
 */

#ifndef WCT_CLI_OPTIONS_HH
#define WCT_CLI_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wct::cli
{

/** Value type of one flag. */
enum class FlagType
{
    Bool,   ///< present/absent, takes no value
    String, ///< any value
    Uint,   ///< non-negative integer
    Double, ///< floating point
};

/** Declaration of one --flag. */
struct FlagSpec
{
    std::string name;              ///< without the leading "--"
    FlagType type = FlagType::String;
    bool required = false;
    std::string valueName;         ///< usage placeholder, e.g. "DIR"
};

/** Declaration of one command: its flags and positional shape. */
struct CommandSpec
{
    std::string name;
    std::vector<FlagSpec> flags;

    /** Usage placeholders for positionals, e.g. {"PLAN"}. */
    std::vector<std::string> positionals;

    /** Minimum positional count (fatal below it). */
    std::size_t minPositionals = 0;

    /** Maximum positional count (fatal above it). */
    std::size_t maxPositionals = 0;
};

/** Parsed, validated options of one command invocation. */
class ParsedOptions
{
  public:
    bool has(const std::string &name) const;

    /** String value, or `fallback` when the flag is absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Integer value (validated at parse time). */
    std::uint64_t getUint(const std::string &name,
                          std::uint64_t fallback) const;

    /** Double value (validated at parse time). */
    double getDouble(const std::string &name, double fallback) const;

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    friend ParsedOptions parseCommand(
        const CommandSpec &spec,
        const std::vector<std::string> &args, std::size_t begin);

    std::map<std::string, std::string> values_;
    std::map<std::string, std::uint64_t> uints_;
    std::map<std::string, double> doubles_;
    std::vector<std::string> positional_;
};

/**
 * Parse args[begin..] against `spec`. Fatal (this is user input) on
 * an unknown flag, a missing value, a value of the wrong type, a
 * missing required flag, or a positional count outside the spec.
 */
ParsedOptions parseCommand(const CommandSpec &spec,
                           const std::vector<std::string> &args,
                           std::size_t begin);

/**
 * Usage line(s) for one command, generated from its spec: required
 * flags first, then optionals in brackets, wrapped to terminal width.
 */
std::string usageText(const CommandSpec &spec);

} // namespace wct::cli

#endif // WCT_CLI_OPTIONS_HH
