#include "cli/cli.hh"

#include <algorithm>
#include <filesystem>
#include <ostream>
#include <sstream>

#include "cli/options.hh"
#include "core/collect.hh"
#include "core/phase_report.hh"
#include "core/profile_table.hh"
#include "core/similarity.hh"
#include "core/subset.hh"
#include "core/transferability.hh"
#include "data/artifact_store.hh"
#include "data/binary_io.hh"
#include "data/csv.hh"
#include "data/remote_store.hh"
#include "data/store_wire.hh"
#include "mtree/compiled_tree.hh"
#include "mtree/serialize.hh"
#include "pipeline/plans.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "serve/socket.hh"
#include "serve/store_service.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/version.hh"
#include "workload/suites.hh"

namespace wct
{

namespace
{

using cli::CommandSpec;
using cli::FlagType;
using cli::ParsedOptions;

// ---- Command declarations (the parser and `wct help` share these;
// see cli/options.hh). ----

const CommandSpec kSuitesSpec{"suites", {}, {}, 0, 0};

const CommandSpec kCollectSpec{
    "collect",
    {
        {"suite", FlagType::String, true, "S"},
        {"out", FlagType::String, true, "DIR"},
        {"benchmark", FlagType::String, false, "B"},
        {"intervals", FlagType::Uint, false, "N"},
        {"interval-length", FlagType::Uint, false, "L"},
        {"warmup", FlagType::Uint, false, "W"},
        {"exact", FlagType::Bool, false, ""},
        {"seed", FlagType::Uint, false, "S"},
        {"shards", FlagType::Uint, false, "N"},
        {"cache-dir", FlagType::String, false, "DIR"},
        {"no-cache", FlagType::Bool, false, ""},
        {"store-url", FlagType::String, false, "URL"},
        {"store-cache-dir", FlagType::String, false, "DIR"},
        {"store-cache-bytes", FlagType::Uint, false, "N"},
    },
    {},
    0,
    0};

const CommandSpec kTrainSpec{
    "train",
    {
        {"data", FlagType::String, true, "CSV|DIR"},
        {"out", FlagType::String, true, "MODEL"},
        {"target", FlagType::String, false, "COL"},
        {"min-leaf", FlagType::Uint, false, "N"},
        {"min-leaf-frac", FlagType::Double, false, "F"},
        {"no-smooth", FlagType::Bool, false, ""},
        {"no-prune", FlagType::Bool, false, ""},
        {"constant-leaves", FlagType::Bool, false, ""},
    },
    {},
    0,
    0};

const CommandSpec kShowSpec{"show",
                            {
                                {"model", FlagType::String, true,
                                 "MODEL"},
                                {"dot", FlagType::Bool, false, ""},
                            },
                            {},
                            0,
                            0};

const CommandSpec kPredictSpec{
    "predict",
    {
        {"model", FlagType::String, true, "MODEL"},
        {"data", FlagType::String, true, "CSV|DIR"},
        {"out", FlagType::String, false, "CSV"},
    },
    {},
    0,
    0};

const CommandSpec kTransferSpec{
    "transfer",
    {
        {"model", FlagType::String, true, "MODEL"},
        {"train", FlagType::String, true, "CSV|DIR"},
        {"target", FlagType::String, true, "CSV|DIR"},
        {"alpha", FlagType::Double, false, "A"},
        {"min-c", FlagType::Double, false, "C"},
        {"max-mae", FlagType::Double, false, "M"},
        {"bootstrap", FlagType::Uint, false, "N"},
    },
    {},
    0,
    0};

const CommandSpec kProfileSpec{
    "profile",
    {
        {"model", FlagType::String, true, "MODEL"},
        {"data", FlagType::String, true, "DIR"},
        {"similarity", FlagType::Bool, false, ""},
    },
    {},
    0,
    0};

const CommandSpec kSubsetSpec{
    "subset",
    {
        {"model", FlagType::String, true, "MODEL"},
        {"data", FlagType::String, true, "DIR"},
        {"k", FlagType::Uint, false, "K"},
        {"method", FlagType::String, false, "greedy|medoids|pca"},
        {"seed", FlagType::Uint, false, "S"},
    },
    {},
    0,
    0};

const CommandSpec kPhasesSpec{
    "phases",
    {
        {"model", FlagType::String, true, "MODEL"},
        {"data", FlagType::String, true, "CSV|DIR"},
    },
    {},
    0,
    0};

const CommandSpec kRunSpec{
    "run",
    {
        {"cache-dir", FlagType::String, false, "DIR"},
        {"store-url", FlagType::String, false, "URL"},
        {"store-cache-dir", FlagType::String, false, "DIR"},
        {"store-cache-bytes", FlagType::Uint, false, "N"},
        {"intervals", FlagType::Uint, false, "N"},
        {"interval-length", FlagType::Uint, false, "L"},
        {"warmup", FlagType::Uint, false, "W"},
    },
    {"PLAN"},
    1,
    1};

const CommandSpec kCacheSpec{
    "cache",
    {
        {"cache-dir", FlagType::String, true, "DIR"},
        {"store-url", FlagType::String, false, "URL"},
        {"store-cache-dir", FlagType::String, false, "DIR"},
        {"store-cache-bytes", FlagType::Uint, false, "N"},
        {"plan", FlagType::String, false, "PLAN"},
        {"grace", FlagType::Uint, false, "SECONDS"},
        {"intervals", FlagType::Uint, false, "N"},
        {"interval-length", FlagType::Uint, false, "L"},
        {"warmup", FlagType::Uint, false, "W"},
    },
    {"ls|rm|gc", "[ID]"},
    1,
    2};

const CommandSpec kStoreSpec{
    "store",
    {
        {"dir", FlagType::String, false, "DIR"},
        {"unix", FlagType::String, false, "SOCK"},
        {"port", FlagType::Uint, false, "N"},
        {"max-connections", FlagType::Uint, false, "N"},
        {"no-remote-shutdown", FlagType::Bool, false, ""},
        {"store-url", FlagType::String, false, "URL"},
        {"grace", FlagType::Uint, false, "SECONDS"},
        {"gc-interval", FlagType::Uint, false, "SECONDS"},
        {"plan", FlagType::String, false, "PLAN"},
        {"intervals", FlagType::Uint, false, "N"},
        {"interval-length", FlagType::Uint, false, "L"},
        {"warmup", FlagType::Uint, false, "W"},
    },
    {"serve|ping|ls|gc|shutdown"},
    1,
    1};

const CommandSpec kServeSpec{
    "serve",
    {
        {"model", FlagType::String, false, "MODEL"},
        {"model-key", FlagType::String, false, "KEY"},
        {"cache-dir", FlagType::String, false, "DIR"},
        {"alias", FlagType::String, false, "NAME"},
        {"unix", FlagType::String, false, "SOCK"},
        {"port", FlagType::Uint, false, "N"},
        {"queue-depth", FlagType::Uint, false, "N"},
        {"max-batch", FlagType::Uint, false, "N"},
        {"batchers", FlagType::Uint, false, "N"},
        {"max-connections", FlagType::Uint, false, "N"},
        {"dispatch-threads", FlagType::Uint, false, "N"},
        {"default-deadline", FlagType::Uint, false, "MS"},
        {"max-deadline", FlagType::Uint, false, "MS"},
        {"slo-predict-p99", FlagType::Uint, false, "US"},
        {"slo-classify-p99", FlagType::Uint, false, "US"},
        {"slo-min-samples", FlagType::Uint, false, "N"},
        {"no-remote-load", FlagType::Bool, false, ""},
        {"no-remote-shutdown", FlagType::Bool, false, ""},
        {"interpreted", FlagType::Bool, false, ""},
        {"stats-text", FlagType::Bool, false, ""},
    },
    {},
    0,
    0};

const CommandSpec kQuerySpec{
    "query",
    {
        {"unix", FlagType::String, false, "SOCK"},
        {"port", FlagType::Uint, false, "N"},
        {"op", FlagType::String, false,
         "predict|classify|load|stats|shutdown"},
        {"model-key", FlagType::String, false, "K"},
        {"data", FlagType::String, false, "CSV|DIR"},
        {"out", FlagType::String, false, "CSV"},
        {"path", FlagType::String, false, "MODEL"},
        {"alias", FlagType::String, false, "NAME"},
        {"id", FlagType::Uint, false, "N"},
        {"timeout", FlagType::Uint, false, "MS"},
    },
    {},
    0,
    0};

const CommandSpec kLoadgenSpec{
    "loadgen",
    {
        {"unix", FlagType::String, false, "SOCK"},
        {"port", FlagType::Uint, false, "N"},
        {"data", FlagType::String, false, "CSV|DIR"},
        {"model-key", FlagType::String, false, "K"},
        {"rate", FlagType::Double, false, "REQ/S"},
        {"duration", FlagType::Double, false, "SECONDS"},
        {"connections", FlagType::Uint, false, "N"},
        {"rows", FlagType::Uint, false, "N"},
        {"mix", FlagType::String, false, "P:C:L:S"},
        {"budget", FlagType::Uint, false, "MS"},
        {"timeout", FlagType::Uint, false, "MS"},
        {"load-path", FlagType::String, false, "MODEL"},
        {"load-alias", FlagType::String, false, "NAME"},
        {"seed", FlagType::Uint, false, "S"},
    },
    {},
    0,
    0};

const CommandSpec kVersionSpec{"version", {}, {}, 0, 0};

const CommandSpec *const kCommands[] = {
    &kSuitesSpec, &kCollectSpec, &kTrainSpec,   &kShowSpec,
    &kPredictSpec, &kTransferSpec, &kProfileSpec, &kSubsetSpec,
    &kPhasesSpec, &kRunSpec,     &kCacheSpec,   &kStoreSpec,
    &kServeSpec,  &kQuerySpec,   &kLoadgenSpec, &kVersionSpec,
};

/**
 * Load a "suite directory" (one CSV per benchmark, as written by
 * `wct collect`) into SuiteData. Weights are taken proportional to
 * each file's sample count.
 */
SuiteData
loadSuiteDirectory(const std::string &path)
{
    namespace fs = std::filesystem;
    if (!fs::is_directory(path))
        wct_fatal("'", path, "' is not a directory");

    SuiteData data;
    data.suiteName = fs::path(path).filename().string();
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(path))
        if (entry.is_regular_file() &&
            entry.path().extension() == ".csv")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    if (files.empty())
        wct_fatal("no .csv files under '", path, "'");

    for (const fs::path &file : files) {
        BenchmarkData bench;
        bench.name = file.stem().string();
        bench.samples = readCsvFile(file.string());
        bench.instructionWeight =
            static_cast<double>(bench.samples.numRows());
        data.benchmarks.push_back(std::move(bench));
    }
    return data;
}

/** Load modeling data: a CSV file or a suite directory (pooled). */
Dataset
loadModelingData(const std::string &path)
{
    if (std::filesystem::is_directory(path))
        return loadSuiteDirectory(path).pooled();
    return readCsvFile(path);
}

CollectionConfig
collectionFromOptions(const ParsedOptions &options)
{
    CollectionConfig config;
    config.intervalInstructions =
        options.getUint("interval-length", 8192);
    config.baseIntervals = options.getUint("intervals", 400);
    config.warmupInstructions = options.getUint("warmup", 1'500'000);
    config.multiplexed = !options.has("exact");
    config.seed = options.getUint("seed", 0x5eed);
    config.shards = options.getUint("shards", 1);
    if (config.shards == 0)
        wct_fatal("--shards must be at least 1");
    return config;
}

/** The standard plan protocol with the run/cache scale overrides. */
pipeline::PlanProtocol
protocolFromOptions(const ParsedOptions &options)
{
    pipeline::PlanProtocol protocol;
    protocol.collection.intervalInstructions = options.getUint(
        "interval-length", protocol.collection.intervalInstructions);
    protocol.collection.baseIntervals = options.getUint(
        "intervals", protocol.collection.baseIntervals);
    protocol.collection.warmupInstructions = options.getUint(
        "warmup", protocol.collection.warmupInstructions);
    return protocol;
}

/**
 * The artifact store a pipeline command operates on: the plain local
 * store at --cache-dir, or — when --store-url is given — the remote
 * daemon fronted by a read-through cache at --store-cache-dir
 * (default: --cache-dir, else a per-user temp directory), size-bounded
 * by --store-cache-bytes.
 */
ArtifactStore
storeFromOptions(const ParsedOptions &options)
{
    const std::string url = options.get("store-url");
    if (url.empty())
        return ArtifactStore(options.get("cache-dir"));
    RemoteStoreConfig config;
    config.url = url;
    config.cacheDir =
        options.get("store-cache-dir", options.get("cache-dir"));
    if (config.cacheDir.empty())
        config.cacheDir = (std::filesystem::temp_directory_path() /
                           "wct-store-cache")
                              .string();
    config.cacheBytes = options.getUint("store-cache-bytes", 0);
    return makeRemoteStore(config);
}

/**
 * Live set for a gc sweep: everything the selected plan (default:
 * every standard plan) would touch under the given protocol. The
 * store is only read (mtree content keys hide inside train
 * artifacts); nothing is executed.
 */
std::vector<ArtifactId>
livePlanArtifacts(const ParsedOptions &options,
                  const ArtifactStore &store)
{
    const pipeline::PlanProtocol protocol =
        protocolFromOptions(options);
    std::vector<std::string> plans;
    if (options.has("plan"))
        plans.push_back(options.get("plan"));
    else
        plans = pipeline::planNames();

    std::vector<ArtifactId> live;
    for (const std::string &plan : plans)
        for (ArtifactId &id :
             pipeline::planArtifacts(plan, protocol, store))
            live.push_back(std::move(id));
    return live;
}

/** Human-readable name of a data path: the last meaningful stem. */
std::string
nameFromPath(const std::string &path)
{
    const std::filesystem::path p(path);
    std::string stem = p.stem().string();
    if (stem.empty())
        stem = p.parent_path().stem().string();
    return stem.empty() ? path : stem;
}

int
cmdSuites(std::ostream &out)
{
    for (const char *name : {"cpu2006", "omp2001"}) {
        const SuiteProfile &suite = suiteByName(name);
        out << name << "  (" << suite.name << ", "
            << suite.benchmarks.size() << " benchmarks)\n";
        for (const auto &bench : suite.benchmarks) {
            out << "  " << bench.name << "  [" << bench.language
                << ", weight " << formatDouble(
                       bench.instructionWeight, 2)
                << "]\n";
        }
    }
    return 0;
}

int
cmdCollect(const ParsedOptions &options, std::ostream &err)
{
    const SuiteProfile &full = suiteByName(options.get("suite"));
    const std::string out_dir = options.get("out");
    const CollectionConfig config = collectionFromOptions(options);

    // Filter before collecting: stream seeds derive from benchmark
    // names, so a filtered run produces exactly the same samples the
    // full-suite run would for those benchmarks.
    const std::string only = options.get("benchmark");
    SuiteProfile suite;
    suite.name = full.name;
    for (const BenchmarkProfile &bench : full.benchmarks)
        if (only.empty() || bench.name == only)
            suite.benchmarks.push_back(bench);
    if (suite.benchmarks.empty())
        wct_fatal("no benchmark '", only, "' in suite '", full.name,
                  "'");

    SuiteData data;
    const bool caching = (!options.get("cache-dir").empty() ||
                          options.has("store-url")) &&
                         !options.has("no-cache");
    if (caching) {
        // The collect stage over the artifact store: a hit is a
        // byte-identical reload of a previous collection, a corrupt
        // artifact warns and recomputes.
        pipeline::Pipeline pipe{storeFromOptions(options)};
        data = pipeline::collectStage(pipe, suite, config);
        if (pipe.allCached())
            err << "loaded " << data.benchmarks.size()
                << " benchmarks from cache\n";
        else
            err << "collected " << data.benchmarks.size()
                << " benchmarks (cache updated)\n";
    } else {
        err << "collecting " << suite.benchmarks.size()
            << " benchmarks ...\n";
        data = collectSuite(suite, config);
    }

    std::filesystem::create_directories(out_dir);
    for (const BenchmarkData &bench : data.benchmarks)
        writeCsvFile(bench.samples,
                     (std::filesystem::path(out_dir) /
                      (bench.name + ".csv"))
                         .string());
    return 0;
}

int
cmdTrain(const ParsedOptions &options, std::ostream &out)
{
    const Dataset data = loadModelingData(options.get("data"));
    const std::string target = options.get("target", "CPI");

    ModelTreeConfig config;
    config.minLeafInstances = options.getUint("min-leaf", 25);
    config.minLeafFraction =
        options.getDouble("min-leaf-frac", 0.025);
    config.smooth = !options.has("no-smooth");
    config.prune = !options.has("no-prune");
    config.constantLeaves = options.has("constant-leaves");

    const ModelTree tree = ModelTree::train(data, target, config);
    writeModelTreeFile(tree, options.get("out"));
    out << "trained on " << data.numRows() << " samples: "
        << tree.numLeaves() << " leaves, saved to "
        << options.get("out") << "\n";
    return 0;
}

int
cmdShow(const ParsedOptions &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(options.get("model"));
    out << (options.has("dot") ? tree.toDot() : tree.describe());
    return 0;
}

int
cmdPredict(const ParsedOptions &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(options.get("model"));
    const Dataset data = loadModelingData(options.get("data"));
    const auto predictions = tree.predictAll(data);
    const auto classes = tree.classifyAll(data);

    if (options.has("out")) {
        // Write the input columns plus prediction and leaf columns.
        std::vector<std::string> names = data.columnNames();
        names.push_back("Predicted" + tree.targetName());
        names.push_back("LeafModel");
        Dataset augmented(names);
        std::vector<double> row;
        for (std::size_t r = 0; r < data.numRows(); ++r) {
            const auto src = data.row(r);
            row.assign(src.begin(), src.end());
            row.push_back(predictions[r]);
            row.push_back(static_cast<double>(classes[r] + 1));
            augmented.addRow(row);
        }
        writeCsvFile(augmented, options.get("out"));
        out << "wrote " << augmented.numRows() << " rows to "
            << options.get("out") << "\n";
    } else {
        for (std::size_t r = 0; r < predictions.size(); ++r)
            out << predictions[r] << " LM" << classes[r] + 1 << "\n";
    }
    return 0;
}

int
cmdTransfer(const ParsedOptions &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(options.get("model"));
    const Dataset train = loadModelingData(options.get("train"));
    const Dataset target = loadModelingData(options.get("target"));

    TransferabilityConfig config;
    config.alpha = options.getDouble("alpha", 0.05);
    config.minCorrelation = options.getDouble("min-c", 0.85);
    config.maxMae = options.getDouble("max-mae", 0.15);
    config.bootstrapReplicates = options.getUint("bootstrap", 0);
    config.modelName = nameFromPath(options.get("model"));
    config.targetName = nameFromPath(options.get("target"));

    const auto report =
        assessTransferability(tree, train, target, config);
    out << report.render();
    return 0;
}

int
cmdProfile(const ParsedOptions &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(options.get("model"));
    const SuiteData data = loadSuiteDirectory(options.get("data"));
    const ProfileTable table(data, tree);
    out << table.render();
    if (options.has("similarity")) {
        const SimilarityMatrix sim(table);
        out << "\n" << sim.render();
    }
    return 0;
}

int
cmdPhases(const ParsedOptions &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(options.get("model"));
    const std::string path = options.get("data");

    if (std::filesystem::is_directory(path)) {
        const SuiteData data = loadSuiteDirectory(path);
        for (const BenchmarkData &bench : data.benchmarks) {
            const PhaseReport report(tree, bench.samples);
            out << bench.name << "\n" << report.render() << "\n";
        }
    } else {
        const Dataset samples = readCsvFile(path);
        const PhaseReport report(tree, samples);
        out << report.render();
    }
    return 0;
}

int
cmdSubset(const ParsedOptions &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(options.get("model"));
    const SuiteData data = loadSuiteDirectory(options.get("data"));
    const ProfileTable table(data, tree);
    const auto k = static_cast<std::size_t>(
        options.getUint("k", 4));
    const std::string method = options.get("method", "greedy");

    SubsetResult result;
    if (method == "greedy") {
        result = selectGreedyProfile(table, data, k);
    } else if (method == "medoids") {
        result = selectByMedoids(table, data, k);
    } else if (method == "pca") {
        Rng rng(options.getUint("seed", 0x5e1));
        result = selectByPcaClustering(table, data, k, rng);
    } else {
        wct_fatal("unknown --method '", method,
                  "' (greedy|medoids|pca)");
    }

    out << "selected (" << method << ", k=" << k << "):\n";
    for (const auto &name : result.selected)
        out << "  " << name << "\n";
    out << "profile distance to suite: "
        << formatDouble(result.profileDistance, 1)
        << "%\nmean-CPI error: "
        << formatDouble(result.cpiError, 3) << "\n";
    return 0;
}

int
cmdRun(const ParsedOptions &options, std::ostream &out,
       std::ostream &err)
{
    const std::string &plan = options.positional()[0];
    if (!pipeline::isPlanName(plan)) {
        std::string names;
        for (const std::string &name : pipeline::planNames())
            names += (names.empty() ? "" : "|") + name;
        wct_fatal("unknown plan '", plan, "' (", names, ")");
    }
    const pipeline::PlanProtocol protocol =
        protocolFromOptions(options);

    // Plan results go to stdout; the stage report (which carries
    // timings) to stderr, so repeated runs stay byte-comparable.
    pipeline::Pipeline pipe{storeFromOptions(options)};
    pipeline::runPlan(pipe, plan, protocol, out);
    err << pipe.renderReport();
    return 0;
}

/** Parse a `<kind>-<16 hex>` artifact name (as printed by cache ls). */
ArtifactId
parseArtifactName(const std::string &name)
{
    const auto dash = name.rfind('-');
    if (dash != std::string::npos) {
        if (const auto key = parseKeyHex(
                std::string_view(name).substr(dash + 1)))
            return {name.substr(0, dash), *key};
    }
    wct_fatal("'", name, "' is not a <kind>-<16 hex digits> artifact "
              "name");
}

int
cmdCache(const ParsedOptions &options, std::ostream &out)
{
    const std::string &action = options.positional()[0];
    const ArtifactStore store = storeFromOptions(options);

    if (action == "ls") {
        std::uintmax_t total = 0;
        for (const ArtifactInfo &info : store.list()) {
            out << info.id.fileName() << "  " << info.fileBytes
                << " bytes\n";
            total += info.fileBytes;
        }
        out << store.list().size() << " artifacts, " << total
            << " bytes\n";
        return 0;
    }
    if (action == "rm") {
        if (options.positional().size() != 2)
            wct_fatal("cache rm needs an artifact name "
                      "(<kind>-<16 hex digits>)");
        const ArtifactId id =
            parseArtifactName(options.positional()[1]);
        if (!store.remove(id))
            wct_fatal("no artifact '", id.fileName(), "' in '",
                      store.dir(), "'");
        out << "removed " << id.fileName() << "\n";
        return 0;
    }
    if (action == "gc") {
        const std::vector<ArtifactId> live =
            livePlanArtifacts(options, store);
        const auto removed =
            store.gc(live, options.getUint("grace", 0));
        for (const ArtifactId &id : removed)
            out << "removed " << id.fileName() << "\n";
        out << removed.size() << " artifacts removed\n";
        return 0;
    }
    wct_fatal("unknown cache action '", action, "' (ls|rm|gc)");
}

/** The daemon endpoint of a `wct store` client action. */
std::string
storeUrlFromOptions(const ParsedOptions &options,
                    const std::string &action)
{
    if (options.has("store-url"))
        return options.get("store-url");
    if (options.has("unix"))
        return "unix:" + options.get("unix");
    if (options.has("port"))
        return "tcp:" + std::to_string(options.getUint("port", 0));
    wct_fatal("store ", action,
              " needs --store-url URL (or --unix SOCKET / --port N)");
}

int
cmdStore(const ParsedOptions &options, std::ostream &out,
         std::ostream &err)
{
    const std::string &action = options.positional()[0];

    if (action == "serve") {
        const std::string dir = options.get("dir");
        if (dir.empty())
            wct_fatal("store serve needs --dir DIR (the artifact "
                      "directory)");
        serve::StoreServiceConfig service_config;
        service_config.allowRemoteShutdown =
            !options.has("no-remote-shutdown");
        service_config.gcGraceSeconds = options.getUint("grace", 0);
        service_config.gcIntervalSeconds =
            options.getUint("gc-interval", 0);
        if (service_config.gcIntervalSeconds > 0) {
            if (service_config.gcGraceSeconds == 0)
                wct_fatal("--gc-interval needs --grace SECONDS > 0 "
                          "(a timed sweep with no grace window "
                          "would reap in-flight uploads)");
            // Timed sweeps pin whatever the selected plan (default:
            // every standard plan) references, plus the grace
            // window for everything else.
            service_config.gcLiveSet = [&options, dir] {
                return livePlanArtifacts(options,
                                         ArtifactStore(dir));
            };
        }
        serve::StoreService service(ArtifactStore(dir),
                                    service_config);

        serve::SocketConfig socket_config;
        socket_config.unixPath = options.get("unix");
        socket_config.tcpPort =
            static_cast<int>(options.getUint("port", 0));
        if (socket_config.unixPath.empty() && !options.has("port"))
            wct_fatal("store serve needs --unix SOCKET or --port N");
        socket_config.maxConnections =
            options.getUint("max-connections", 32);
        socket_config.frameMagic = std::string(kStoreWireMagic, 8);
        socket_config.frameVersion = kStoreWireFormatVersion;
        socket_config.maxFramePayload = kMaxStoreFramePayload;

        serve::SocketServer transport(service, socket_config);
        std::string sock_err;
        if (!transport.start(&sock_err))
            wct_fatal(sock_err);
        if (!socket_config.unixPath.empty())
            err << "store serving " << dir << " on "
                << socket_config.unixPath << "\n";
        else
            err << "store serving " << dir << " on 127.0.0.1:"
                << transport.boundPort() << "\n";

        // Block until a client sends a Shutdown frame (unless
        // --no-remote-shutdown, in which case only a signal ends us).
        transport.waitForShutdown();
        err << "store daemon drained, exiting\n";
        return 0;
    }

    const std::string url = storeUrlFromOptions(options, action);

    if (action == "gc") {
        // The liveness expansion reads train artifacts through the
        // daemon itself, so the sweep is exact without any local
        // state; the throwaway read-through cache lands in tmp.
        RemoteStoreConfig config;
        config.url = url;
        config.cacheDir = (std::filesystem::temp_directory_path() /
                           "wct-store-gc-cache")
                              .string();
        const ArtifactStore store = makeRemoteStore(config);
        const std::vector<ArtifactId> live =
            livePlanArtifacts(options, store);
        const auto removed =
            store.gc(live, options.getUint("grace", 0));
        for (const ArtifactId &id : removed)
            out << "removed " << id.fileName() << "\n";
        out << removed.size() << " artifacts removed\n";
        return 0;
    }

    StoreRequest request;
    request.id = 1;
    if (action == "ping")
        request.op = StoreOp::Ping;
    else if (action == "ls")
        request.op = StoreOp::List;
    else if (action == "shutdown")
        request.op = StoreOp::Shutdown;
    else
        wct_fatal("unknown store action '", action,
                  "' (serve|ping|ls|gc|shutdown)");

    std::string conn_err;
    const auto endpoint = parseStoreUrl(url, &conn_err);
    if (!endpoint)
        wct_fatal(conn_err);
    auto client = StoreClient::connect(*endpoint, &conn_err);
    if (!client)
        wct_fatal(conn_err);
    const auto response = client->call(request, &conn_err);
    if (!response)
        wct_fatal(conn_err);
    if (response->status != StoreStatus::Ok) {
        out << "status " << storeStatusName(response->status) << ": "
            << response->error << "\n";
        return 1;
    }

    switch (response->op) {
      case StoreOp::Ping:
        out << "ok: " << url << " (" << kStoreWireMagic << " v"
            << kStoreWireFormatVersion << ")\n";
        break;
      case StoreOp::List: {
        std::uintmax_t total = 0;
        for (const ArtifactInfo &info : response->artifacts) {
            out << info.id.fileName() << "  " << info.fileBytes
                << " bytes\n";
            total += info.fileBytes;
        }
        out << response->artifacts.size() << " artifacts, " << total
            << " bytes\n";
        break;
      }
      case StoreOp::Shutdown:
        out << "store daemon shutting down\n";
        break;
      default:
        break;
    }
    return 0;
}

int
cmdVersion(std::ostream &out)
{
    out << "wct " << kWctVersion << "\n"
        << "model-tree format: " << kModelTreeMagicLine << "\n"
        << "compiled-tree layout: v" << kCompiledTreeLayoutVersion
        << " (block " << CompiledTree::kBlockRows << " rows)\n"
        << "dataset format: " << kDatasetMagic << " v"
        << kDatasetFormatVersion << "\n"
        << "artifact format: " << kArtifactMagic << " v"
        << kArtifactFormatVersion << "\n"
        << "serve wire format: " << serve::kWireMagic << " v"
        << serve::kWireFormatVersion << "\n"
        << "store wire format: " << kStoreWireMagic << " v"
        << kStoreWireFormatVersion << "\n";
    return 0;
}

int
cmdServe(const ParsedOptions &options, std::ostream &out,
         std::ostream &err)
{
    serve::ServerConfig config;
    config.queueDepth = options.getUint("queue-depth", 256);
    config.maxBatch = options.getUint("max-batch", 64);
    config.batchers = options.getUint("batchers", 1);
    config.allowRemoteLoad = !options.has("no-remote-load");
    config.allowRemoteShutdown = !options.has("no-remote-shutdown");
    config.defaultDeadlineMs =
        options.getUint("default-deadline", 0);
    config.maxDeadlineMs = options.getUint("max-deadline", 0);
    config.sloPredictP99Us = options.getUint("slo-predict-p99", 0);
    config.sloClassifyP99Us =
        options.getUint("slo-classify-p99", 0);
    config.sloMinSamples = options.getUint("slo-min-samples", 32);
    // Escape hatch for diagnosing a suspected compiled-evaluation
    // divergence in the field: serve from the interpreted per-row
    // walk instead (responses are byte-identical by contract).
    config.compiledEval = !options.has("interpreted");

    serve::Server server(config);
    serve::ModelInfo info;
    std::string load_err;
    if (options.has("model")) {
        const std::string model_path = options.get("model");
        if (!server.loadModel(model_path, options.get("alias"),
                              &info, &load_err))
            wct_fatal("cannot load model '", model_path, "': ",
                      load_err);
    } else if (options.has("model-key")) {
        const std::string key = options.get("model-key");
        const std::string cache_dir = options.get("cache-dir");
        if (cache_dir.empty())
            wct_fatal("--model-key needs --cache-dir DIR (the "
                      "artifact store holding the model)");
        if (!server.loadModelFromStore(ArtifactStore(cache_dir), key,
                                       options.get("alias"), &info,
                                       &load_err))
            wct_fatal("cannot load model key '", key, "': ",
                      load_err);
    } else {
        wct_fatal("serve needs --model MODEL or --model-key KEY "
                  "--cache-dir DIR");
    }
    err << "loaded model " << info.alias << " (key " << info.key
        << ", target " << info.target << ", " << info.numLeaves
        << " leaves)\n";

    serve::SocketConfig socket_config;
    socket_config.unixPath = options.get("unix");
    socket_config.tcpPort = static_cast<int>(
        options.getUint("port", 0));
    if (socket_config.unixPath.empty() && !options.has("port"))
        wct_fatal("serve needs --unix SOCKET or --port N");
    socket_config.maxConnections =
        options.getUint("max-connections", 32);
    socket_config.dispatchThreads =
        options.getUint("dispatch-threads", 4);

    serve::SocketServer transport(server, socket_config);
    std::string sock_err;
    if (!transport.start(&sock_err))
        wct_fatal(sock_err);
    if (!socket_config.unixPath.empty())
        err << "serving on " << socket_config.unixPath << "\n";
    else
        err << "serving on 127.0.0.1:" << transport.boundPort()
            << "\n";

    // Block until a client sends a shutdown frame, then drain.
    transport.waitForShutdown();
    server.drain();
    if (options.has("stats-text"))
        out << server.stats().renderText();
    err << "server drained, exiting\n";
    return 0;
}

/** Connect a query client per the --unix/--port options. */
serve::ServeClient
queryConnect(const ParsedOptions &options)
{
    std::string err;
    std::optional<serve::ServeClient> client;
    if (options.has("unix"))
        client = serve::ServeClient::connectUnix(
            options.get("unix"), &err);
    else if (options.has("port"))
        client = serve::ServeClient::connectTcp(
            static_cast<int>(options.getUint("port", 0)), &err);
    else
        wct_fatal("query needs --unix SOCKET or --port N");
    if (!client)
        wct_fatal(err);
    return std::move(*client);
}

int
cmdQuery(const ParsedOptions &options, std::ostream &out)
{
    const std::string op = options.get("op", "predict");
    serve::Request request;
    request.id = options.getUint("id", 1);

    if (op == "predict" || op == "classify") {
        request.op = op == "predict" ? serve::Opcode::Predict
                                     : serve::Opcode::Classify;
        request.modelKey = options.get("model-key");
        if (!options.has("data"))
            wct_fatal("missing required --data");
        const Dataset data = loadModelingData(options.get("data"));
        request.schema = data.columnNames();
        request.rows.reserve(data.numRows() * data.numColumns());
        for (std::size_t r = 0; r < data.numRows(); ++r) {
            const auto row = data.row(r);
            request.rows.insert(request.rows.end(), row.begin(),
                                row.end());
        }
    } else if (op == "load") {
        request.op = serve::Opcode::LoadModel;
        if (!options.has("path"))
            wct_fatal("missing required --path");
        request.path = options.get("path");
        request.alias = options.get("alias");
    } else if (op == "stats") {
        request.op = serve::Opcode::Stats;
    } else if (op == "shutdown") {
        request.op = serve::Opcode::Shutdown;
    } else {
        wct_fatal("unknown --op '", op,
                  "' (predict|classify|load|stats|shutdown)");
    }

    // --timeout MS arms both ends of the deadline: the request's
    // budgetMs header (the server abandons the request when the
    // budget expires) and a client socket deadline (a stalled server
    // cannot park the CLI forever). Either expiry exits 124, the
    // conventional timeout status (cf. timeout(1)).
    const std::uint64_t timeout_ms = options.getUint("timeout", 0);
    request.budgetMs = static_cast<std::uint32_t>(timeout_ms);

    serve::ServeClient client = queryConnect(options);
    if (timeout_ms > 0)
        client.setTimeoutMs(timeout_ms);
    std::string call_err;
    const auto response = client.call(request, &call_err);
    if (!response) {
        if (client.lastCallTimedOut()) {
            out << "status timeout: no response within "
                << timeout_ms << " ms\n";
            return 124;
        }
        wct_fatal(call_err);
    }
    if (response->status != serve::Status::Ok) {
        out << "status " << serve::statusName(response->status)
            << ": " << response->error << "\n";
        return response->status == serve::Status::DeadlineExceeded
                   ? 124
                   : 1;
    }

    switch (response->op) {
      case serve::Opcode::Predict:
      case serve::Opcode::Classify: {
        if (options.has("out")) {
            const Dataset data =
                loadModelingData(options.get("data"));
            // The response rows index the local dataset below; a
            // buggy server must fail here, not read out of bounds.
            if (response->leaf.size() != data.numRows())
                wct_fatal("server returned ",
                          response->leaf.size(), " rows for ",
                          data.numRows(), " samples");
            std::vector<std::string> names = data.columnNames();
            if (response->op == serve::Opcode::Predict)
                names.push_back("PredictedCPI");
            names.push_back("LeafModel");
            Dataset augmented(names);
            std::vector<double> row;
            for (std::size_t r = 0; r < data.numRows(); ++r) {
                const auto src = data.row(r);
                row.assign(src.begin(), src.end());
                if (response->op == serve::Opcode::Predict)
                    row.push_back(response->cpi[r]);
                row.push_back(
                    static_cast<double>(response->leaf[r]));
                augmented.addRow(row);
            }
            writeCsvFile(augmented, options.get("out"));
            out << "wrote " << augmented.numRows() << " rows to "
                << options.get("out") << "\n";
            break;
        }
        for (std::size_t r = 0; r < response->leaf.size(); ++r) {
            if (response->op == serve::Opcode::Predict)
                out << response->cpi[r] << " ";
            out << "LM" << response->leaf[r] << "\n";
        }
        break;
      }
      case serve::Opcode::LoadModel:
        out << "loaded " << response->modelKey << " (target "
            << response->target << ", " << response->numLeaves
            << " leaves)\n";
        break;
      case serve::Opcode::Stats:
        out << response->stats.renderText();
        break;
      case serve::Opcode::Shutdown:
        out << "server shutting down\n";
        break;
    }
    return 0;
}

int
cmdLoadgen(const ParsedOptions &options, std::ostream &out)
{
    serve::LoadgenConfig config;
    config.unixPath = options.get("unix");
    config.tcpPort = static_cast<int>(options.getUint("port", 0));
    if (config.unixPath.empty() && !options.has("port"))
        wct_fatal("loadgen needs --unix SOCKET or --port N");
    config.ratePerSec = options.getDouble("rate", 200.0);
    config.durationSec = options.getDouble("duration", 2.0);
    config.connections = options.getUint("connections", 4);
    config.rowsPerRequest = options.getUint("rows", 32);
    config.budgetMs =
        static_cast<std::uint32_t>(options.getUint("budget", 0));
    config.timeoutMs = options.getUint("timeout", 0);
    config.modelKey = options.get("model-key");
    config.loadPath = options.get("load-path");
    config.loadAlias = options.get("load-alias");
    config.seed = options.getUint("seed", 1);

    // --mix P:C:L:S: relative weights of predict, classify,
    // loadModel, and stats in the request stream.
    const std::string mix = options.get("mix", "6:2:0:1");
    std::uint32_t *weights[] = {
        &config.predictWeight, &config.classifyWeight,
        &config.loadWeight, &config.statsWeight};
    std::istringstream mix_in(mix);
    std::string part;
    std::size_t w = 0;
    while (w < 4 && std::getline(mix_in, part, ':')) {
        try {
            *weights[w++] = static_cast<std::uint32_t>(
                std::stoul(part));
        } catch (const std::exception &) {
            wct_fatal("bad --mix '", mix, "' (want P:C:L:S)");
        }
    }
    if (w != 4)
        wct_fatal("bad --mix '", mix, "' (want P:C:L:S)");

    if (config.predictWeight > 0 || config.classifyWeight > 0) {
        if (!options.has("data"))
            wct_fatal("loadgen with an inference mix needs --data "
                      "CSV|DIR (rows to send)");
        const Dataset data = loadModelingData(options.get("data"));
        config.schema = data.columnNames();
        config.pool.reserve(data.numRows() * data.numColumns());
        for (std::size_t r = 0; r < data.numRows(); ++r) {
            const auto row = data.row(r);
            config.pool.insert(config.pool.end(), row.begin(),
                               row.end());
        }
    }

    std::string run_err;
    const auto report = serve::runLoadgen(config, &run_err);
    if (!report)
        wct_fatal(run_err);
    out << report->renderText();
    if (report->completed == 0) {
        out << "loadgen FAILED: no request completed\n";
        return 1;
    }
    if (report->malformed() > 0) {
        out << "loadgen FAILED: " << report->malformed()
            << " malformed responses\n";
        return 1;
    }
    return 0;
}

void
printUsage(std::ostream &err)
{
    err << "usage: wct <command> [options]\ncommands:\n";
    for (const CommandSpec *spec : kCommands)
        err << cli::usageText(*spec);
}

} // namespace

int
runCli(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
        printUsage(err);
        return args.empty() ? 2 : 0;
    }
    if (args[0] == "version" || args[0] == "--version")
        return cmdVersion(out);
    const std::string &command = args[0];

    const CommandSpec *spec = nullptr;
    for (const CommandSpec *candidate : kCommands)
        if (candidate->name == command)
            spec = candidate;
    if (spec == nullptr) {
        err << "unknown command '" << command << "'\n";
        printUsage(err);
        return 2;
    }
    const ParsedOptions options = cli::parseCommand(*spec, args, 1);

    if (command == "suites")
        return cmdSuites(out);
    if (command == "collect")
        return cmdCollect(options, err);
    if (command == "train")
        return cmdTrain(options, out);
    if (command == "show")
        return cmdShow(options, out);
    if (command == "predict")
        return cmdPredict(options, out);
    if (command == "transfer")
        return cmdTransfer(options, out);
    if (command == "profile")
        return cmdProfile(options, out);
    if (command == "subset")
        return cmdSubset(options, out);
    if (command == "phases")
        return cmdPhases(options, out);
    if (command == "run")
        return cmdRun(options, out, err);
    if (command == "cache")
        return cmdCache(options, out);
    if (command == "store")
        return cmdStore(options, out, err);
    if (command == "serve")
        return cmdServe(options, out, err);
    if (command == "query")
        return cmdQuery(options, out);
    if (command == "loadgen")
        return cmdLoadgen(options, out);
    return cmdVersion(out);
}

} // namespace wct
