#include "cli/cli.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <ostream>

#include "core/collect.hh"
#include "core/collect_cache.hh"
#include "core/phase_report.hh"
#include "core/profile_table.hh"
#include "core/similarity.hh"
#include "core/subset.hh"
#include "core/transferability.hh"
#include "data/binary_io.hh"
#include "data/csv.hh"
#include "mtree/serialize.hh"
#include "serve/server.hh"
#include "serve/socket.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/version.hh"
#include "workload/suites.hh"

namespace wct
{

namespace
{

/** Parsed --flag value pairs plus positional arguments. */
struct Options
{
    std::map<std::string, std::string> values;
    std::vector<std::string> positional;

    bool has(const std::string &key) const
    {
        return values.count(key) != 0;
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = values.find(key);
        return it == values.end() ? fallback : it->second;
    }

    std::uint64_t
    getUint(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values.find(key);
        if (it == values.end())
            return fallback;
        char *end = nullptr;
        const auto parsed =
            std::strtoull(it->second.c_str(), &end, 10);
        if (end == it->second.c_str() || *end != '\0')
            wct_fatal("--", key, " expects an integer, got '",
                      it->second, "'");
        return parsed;
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = values.find(key);
        if (it == values.end())
            return fallback;
        char *end = nullptr;
        const double parsed = std::strtod(it->second.c_str(), &end);
        if (end == it->second.c_str() || *end != '\0')
            wct_fatal("--", key, " expects a number, got '",
                      it->second, "'");
        return parsed;
    }
};

/** Flags that take no value. */
const std::vector<std::string> kBooleanFlags = {
    "exact", "dot", "no-smooth", "no-prune", "constant-leaves",
    "similarity", "no-cache", "stats-text", "no-remote-load",
    "no-remote-shutdown",
};

Options
parseOptions(const std::vector<std::string> &args, std::size_t begin)
{
    Options options;
    for (std::size_t i = begin; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (!startsWith(arg, "--")) {
            options.positional.push_back(arg);
            continue;
        }
        const std::string key = arg.substr(2);
        if (std::find(kBooleanFlags.begin(), kBooleanFlags.end(),
                      key) != kBooleanFlags.end()) {
            options.values[key] = "1";
            continue;
        }
        if (i + 1 >= args.size())
            wct_fatal("--", key, " needs a value");
        options.values[key] = args[++i];
    }
    return options;
}

std::string
require(const Options &options, const std::string &key)
{
    if (!options.has(key))
        wct_fatal("missing required --", key);
    return options.get(key);
}

/**
 * Load a "suite directory" (one CSV per benchmark, as written by
 * `wct collect`) into SuiteData. Weights are taken proportional to
 * each file's sample count.
 */
SuiteData
loadSuiteDirectory(const std::string &path)
{
    namespace fs = std::filesystem;
    if (!fs::is_directory(path))
        wct_fatal("'", path, "' is not a directory");

    SuiteData data;
    data.suiteName = fs::path(path).filename().string();
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(path))
        if (entry.is_regular_file() &&
            entry.path().extension() == ".csv")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    if (files.empty())
        wct_fatal("no .csv files under '", path, "'");

    for (const fs::path &file : files) {
        BenchmarkData bench;
        bench.name = file.stem().string();
        bench.samples = readCsvFile(file.string());
        bench.instructionWeight =
            static_cast<double>(bench.samples.numRows());
        data.benchmarks.push_back(std::move(bench));
    }
    return data;
}

/** Load modeling data: a CSV file or a suite directory (pooled). */
Dataset
loadModelingData(const std::string &path)
{
    if (std::filesystem::is_directory(path))
        return loadSuiteDirectory(path).pooled();
    return readCsvFile(path);
}

CollectionConfig
collectionFromOptions(const Options &options)
{
    CollectionConfig config;
    config.intervalInstructions =
        options.getUint("interval-length", 8192);
    config.baseIntervals = options.getUint("intervals", 400);
    config.warmupInstructions = options.getUint("warmup", 1'500'000);
    config.multiplexed = !options.has("exact");
    config.seed = options.getUint("seed", 0x5eed);
    config.shards = options.getUint("shards", 1);
    if (config.shards == 0)
        wct_fatal("--shards must be at least 1");
    return config;
}

/** Human-readable name of a data path: the last meaningful stem. */
std::string
nameFromPath(const std::string &path)
{
    const std::filesystem::path p(path);
    std::string stem = p.stem().string();
    if (stem.empty())
        stem = p.parent_path().stem().string();
    return stem.empty() ? path : stem;
}

int
cmdSuites(std::ostream &out)
{
    for (const char *name : {"cpu2006", "omp2001"}) {
        const SuiteProfile &suite = suiteByName(name);
        out << name << "  (" << suite.name << ", "
            << suite.benchmarks.size() << " benchmarks)\n";
        for (const auto &bench : suite.benchmarks) {
            out << "  " << bench.name << "  [" << bench.language
                << ", weight " << formatDouble(
                       bench.instructionWeight, 2)
                << "]\n";
        }
    }
    return 0;
}

int
cmdCollect(const Options &options, std::ostream &err)
{
    const SuiteProfile &full = suiteByName(require(options, "suite"));
    const std::string out_dir = require(options, "out");
    const CollectionConfig config = collectionFromOptions(options);

    // Filter before collecting: stream seeds derive from benchmark
    // names, so a filtered run produces exactly the same samples the
    // full-suite run would for those benchmarks.
    const std::string only = options.get("benchmark");
    SuiteProfile suite;
    suite.name = full.name;
    for (const BenchmarkProfile &bench : full.benchmarks)
        if (only.empty() || bench.name == only)
            suite.benchmarks.push_back(bench);
    if (suite.benchmarks.empty())
        wct_fatal("no benchmark '", only, "' in suite '", full.name,
                  "'");

    SuiteData data;
    const std::string cache_dir = options.get("cache-dir");
    if (!cache_dir.empty() && !options.has("no-cache")) {
        bool cache_hit = false;
        data = collectSuiteCached(suite, config, cache_dir,
                                  &cache_hit);
        if (cache_hit)
            err << "loaded " << data.benchmarks.size()
                << " benchmarks from cache\n";
        else
            err << "collected " << data.benchmarks.size()
                << " benchmarks (cache updated)\n";
    } else {
        err << "collecting " << suite.benchmarks.size()
            << " benchmarks ...\n";
        data = collectSuite(suite, config);
    }

    std::filesystem::create_directories(out_dir);
    for (const BenchmarkData &bench : data.benchmarks)
        writeCsvFile(bench.samples,
                     (std::filesystem::path(out_dir) /
                      (bench.name + ".csv"))
                         .string());
    return 0;
}

int
cmdTrain(const Options &options, std::ostream &out)
{
    const Dataset data = loadModelingData(require(options, "data"));
    const std::string target = options.get("target", "CPI");

    ModelTreeConfig config;
    config.minLeafInstances = options.getUint("min-leaf", 25);
    config.minLeafFraction =
        options.getDouble("min-leaf-frac", 0.025);
    config.smooth = !options.has("no-smooth");
    config.prune = !options.has("no-prune");
    config.constantLeaves = options.has("constant-leaves");

    const ModelTree tree = ModelTree::train(data, target, config);
    writeModelTreeFile(tree, require(options, "out"));
    out << "trained on " << data.numRows() << " samples: "
        << tree.numLeaves() << " leaves, saved to "
        << options.get("out") << "\n";
    return 0;
}

int
cmdShow(const Options &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(require(options, "model"));
    out << (options.has("dot") ? tree.toDot() : tree.describe());
    return 0;
}

int
cmdPredict(const Options &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(require(options, "model"));
    const Dataset data = loadModelingData(require(options, "data"));
    const auto predictions = tree.predictAll(data);
    const auto classes = tree.classifyAll(data);

    if (options.has("out")) {
        // Write the input columns plus prediction and leaf columns.
        std::vector<std::string> names = data.columnNames();
        names.push_back("Predicted" + tree.targetName());
        names.push_back("LeafModel");
        Dataset augmented(names);
        std::vector<double> row;
        for (std::size_t r = 0; r < data.numRows(); ++r) {
            const auto src = data.row(r);
            row.assign(src.begin(), src.end());
            row.push_back(predictions[r]);
            row.push_back(static_cast<double>(classes[r] + 1));
            augmented.addRow(row);
        }
        writeCsvFile(augmented, options.get("out"));
        out << "wrote " << augmented.numRows() << " rows to "
            << options.get("out") << "\n";
    } else {
        for (std::size_t r = 0; r < predictions.size(); ++r)
            out << predictions[r] << " LM" << classes[r] + 1 << "\n";
    }
    return 0;
}

int
cmdTransfer(const Options &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(require(options, "model"));
    const Dataset train = loadModelingData(require(options, "train"));
    const Dataset target =
        loadModelingData(require(options, "target"));

    TransferabilityConfig config;
    config.alpha = options.getDouble("alpha", 0.05);
    config.minCorrelation = options.getDouble("min-c", 0.85);
    config.maxMae = options.getDouble("max-mae", 0.15);
    config.bootstrapReplicates = options.getUint("bootstrap", 0);
    config.modelName = nameFromPath(options.get("model"));
    config.targetName = nameFromPath(options.get("target"));

    const auto report =
        assessTransferability(tree, train, target, config);
    out << report.render();
    return 0;
}

int
cmdProfile(const Options &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(require(options, "model"));
    const SuiteData data =
        loadSuiteDirectory(require(options, "data"));
    const ProfileTable table(data, tree);
    out << table.render();
    if (options.has("similarity")) {
        const SimilarityMatrix sim(table);
        out << "\n" << sim.render();
    }
    return 0;
}

int
cmdPhases(const Options &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(require(options, "model"));
    const std::string path = require(options, "data");

    if (std::filesystem::is_directory(path)) {
        const SuiteData data = loadSuiteDirectory(path);
        for (const BenchmarkData &bench : data.benchmarks) {
            const PhaseReport report(tree, bench.samples);
            out << bench.name << "\n" << report.render() << "\n";
        }
    } else {
        const Dataset samples = readCsvFile(path);
        const PhaseReport report(tree, samples);
        out << report.render();
    }
    return 0;
}

int
cmdSubset(const Options &options, std::ostream &out)
{
    const ModelTree tree =
        readModelTreeFile(require(options, "model"));
    const SuiteData data =
        loadSuiteDirectory(require(options, "data"));
    const ProfileTable table(data, tree);
    const auto k = static_cast<std::size_t>(
        options.getUint("k", 4));
    const std::string method = options.get("method", "greedy");

    SubsetResult result;
    if (method == "greedy") {
        result = selectGreedyProfile(table, data, k);
    } else if (method == "medoids") {
        result = selectByMedoids(table, data, k);
    } else if (method == "pca") {
        Rng rng(options.getUint("seed", 0x5e1));
        result = selectByPcaClustering(table, data, k, rng);
    } else {
        wct_fatal("unknown --method '", method,
                  "' (greedy|medoids|pca)");
    }

    out << "selected (" << method << ", k=" << k << "):\n";
    for (const auto &name : result.selected)
        out << "  " << name << "\n";
    out << "profile distance to suite: "
        << formatDouble(result.profileDistance, 1)
        << "%\nmean-CPI error: "
        << formatDouble(result.cpiError, 3) << "\n";
    return 0;
}

int
cmdVersion(std::ostream &out)
{
    out << "wct " << kWctVersion << "\n"
        << "model-tree format: " << kModelTreeMagicLine << "\n"
        << "dataset format: " << kDatasetMagic << " v"
        << kDatasetFormatVersion << "\n"
        << "serve wire format: " << serve::kWireMagic << " v"
        << serve::kWireFormatVersion << "\n";
    return 0;
}

int
cmdServe(const Options &options, std::ostream &out,
         std::ostream &err)
{
    serve::ServerConfig config;
    config.queueDepth = options.getUint("queue-depth", 256);
    config.maxBatch = options.getUint("max-batch", 64);
    config.batchers = options.getUint("batchers", 1);
    config.allowRemoteLoad = !options.has("no-remote-load");
    config.allowRemoteShutdown = !options.has("no-remote-shutdown");

    serve::Server server(config);
    serve::ModelInfo info;
    std::string load_err;
    const std::string model_path = require(options, "model");
    if (!server.loadModel(model_path, options.get("alias"), &info,
                          &load_err))
        wct_fatal("cannot load model '", model_path, "': ",
                  load_err);
    err << "loaded model " << info.alias << " (key " << info.key
        << ", target " << info.target << ", " << info.numLeaves
        << " leaves)\n";

    serve::SocketConfig socket_config;
    socket_config.unixPath = options.get("unix");
    socket_config.tcpPort = static_cast<int>(
        options.getUint("port", 0));
    if (socket_config.unixPath.empty() && !options.has("port"))
        wct_fatal("serve needs --unix SOCKET or --port N");
    socket_config.maxConnections =
        options.getUint("max-connections", 32);

    serve::SocketServer transport(server, socket_config);
    std::string sock_err;
    if (!transport.start(&sock_err))
        wct_fatal(sock_err);
    if (!socket_config.unixPath.empty())
        err << "serving on " << socket_config.unixPath << "\n";
    else
        err << "serving on 127.0.0.1:" << transport.boundPort()
            << "\n";

    // Block until a client sends a shutdown frame, then drain.
    transport.waitForShutdown();
    server.drain();
    if (options.has("stats-text"))
        out << server.stats().renderText();
    err << "server drained, exiting\n";
    return 0;
}

/** Connect a query client per the --unix/--port options. */
serve::ServeClient
queryConnect(const Options &options)
{
    std::string err;
    std::optional<serve::ServeClient> client;
    if (options.has("unix"))
        client = serve::ServeClient::connectUnix(
            options.get("unix"), &err);
    else if (options.has("port"))
        client = serve::ServeClient::connectTcp(
            static_cast<int>(options.getUint("port", 0)), &err);
    else
        wct_fatal("query needs --unix SOCKET or --port N");
    if (!client)
        wct_fatal(err);
    return std::move(*client);
}

int
cmdQuery(const Options &options, std::ostream &out)
{
    const std::string op = options.get("op", "predict");
    serve::Request request;
    request.id = options.getUint("id", 1);

    if (op == "predict" || op == "classify") {
        request.op = op == "predict" ? serve::Opcode::Predict
                                     : serve::Opcode::Classify;
        request.modelKey = options.get("model-key");
        const Dataset data =
            loadModelingData(require(options, "data"));
        request.schema = data.columnNames();
        request.rows.reserve(data.numRows() * data.numColumns());
        for (std::size_t r = 0; r < data.numRows(); ++r) {
            const auto row = data.row(r);
            request.rows.insert(request.rows.end(), row.begin(),
                                row.end());
        }
    } else if (op == "load") {
        request.op = serve::Opcode::LoadModel;
        request.path = require(options, "path");
        request.alias = options.get("alias");
    } else if (op == "stats") {
        request.op = serve::Opcode::Stats;
    } else if (op == "shutdown") {
        request.op = serve::Opcode::Shutdown;
    } else {
        wct_fatal("unknown --op '", op,
                  "' (predict|classify|load|stats|shutdown)");
    }

    serve::ServeClient client = queryConnect(options);
    std::string call_err;
    const auto response = client.call(request, &call_err);
    if (!response)
        wct_fatal(call_err);
    if (response->status != serve::Status::Ok) {
        out << "status " << serve::statusName(response->status)
            << ": " << response->error << "\n";
        return 1;
    }

    switch (response->op) {
      case serve::Opcode::Predict:
      case serve::Opcode::Classify: {
        if (options.has("out")) {
            const Dataset data =
                loadModelingData(require(options, "data"));
            // The response rows index the local dataset below; a
            // buggy server must fail here, not read out of bounds.
            if (response->leaf.size() != data.numRows())
                wct_fatal("server returned ",
                          response->leaf.size(), " rows for ",
                          data.numRows(), " samples");
            std::vector<std::string> names = data.columnNames();
            if (response->op == serve::Opcode::Predict)
                names.push_back("PredictedCPI");
            names.push_back("LeafModel");
            Dataset augmented(names);
            std::vector<double> row;
            for (std::size_t r = 0; r < data.numRows(); ++r) {
                const auto src = data.row(r);
                row.assign(src.begin(), src.end());
                if (response->op == serve::Opcode::Predict)
                    row.push_back(response->cpi[r]);
                row.push_back(
                    static_cast<double>(response->leaf[r]));
                augmented.addRow(row);
            }
            writeCsvFile(augmented, options.get("out"));
            out << "wrote " << augmented.numRows() << " rows to "
                << options.get("out") << "\n";
            break;
        }
        for (std::size_t r = 0; r < response->leaf.size(); ++r) {
            if (response->op == serve::Opcode::Predict)
                out << response->cpi[r] << " ";
            out << "LM" << response->leaf[r] << "\n";
        }
        break;
      }
      case serve::Opcode::LoadModel:
        out << "loaded " << response->modelKey << " (target "
            << response->target << ", " << response->numLeaves
            << " leaves)\n";
        break;
      case serve::Opcode::Stats:
        out << response->stats.renderText();
        break;
      case serve::Opcode::Shutdown:
        out << "server shutting down\n";
        break;
    }
    return 0;
}

void
printUsage(std::ostream &err)
{
    err << "usage: wct <command> [options]\n"
        << "commands:\n"
        << "  suites\n"
        << "  collect  --suite S --out DIR [--benchmark B]"
           " [--intervals N]\n"
        << "           [--interval-length L] [--warmup W] [--exact]"
           " [--seed S]\n"
        << "           [--shards N] [--cache-dir DIR] [--no-cache]\n"
        << "  train    --data CSV|DIR --out MODEL [--target CPI]\n"
        << "           [--min-leaf N] [--min-leaf-frac F]"
           " [--no-smooth]\n"
        << "           [--no-prune] [--constant-leaves]\n"
        << "  show     --model MODEL [--dot]\n"
        << "  predict  --model MODEL --data CSV|DIR [--out CSV]\n"
        << "  transfer --model MODEL --train CSV|DIR --target "
           "CSV|DIR\n"
        << "           [--alpha A] [--min-c C] [--max-mae M]"
           " [--bootstrap N]\n"
        << "  profile  --model MODEL --data DIR [--similarity]\n"
        << "  subset   --model MODEL --data DIR [--k K]"
           " [--method greedy|medoids|pca]\n"
        << "  phases   --model MODEL --data CSV|DIR\n"
        << "  serve    --model MODEL (--unix SOCK | --port N)"
           " [--alias NAME]\n"
        << "           [--queue-depth N] [--max-batch N]"
           " [--batchers N]\n"
        << "           [--max-connections N] [--no-remote-load]\n"
        << "           [--no-remote-shutdown] [--stats-text]\n"
        << "  query    (--unix SOCK | --port N)"
           " [--op predict|classify|load|stats|shutdown]\n"
        << "           [--data CSV|DIR] [--model-key K]"
           " [--out CSV]\n"
        << "           [--path MODEL --alias NAME] [--id N]\n"
        << "  version\n";
}

} // namespace

int
runCli(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
        printUsage(err);
        return args.empty() ? 2 : 0;
    }
    if (args[0] == "version" || args[0] == "--version")
        return cmdVersion(out);
    const std::string &command = args[0];
    const Options options = parseOptions(args, 1);

    if (command == "suites")
        return cmdSuites(out);
    if (command == "collect")
        return cmdCollect(options, err);
    if (command == "train")
        return cmdTrain(options, out);
    if (command == "show")
        return cmdShow(options, out);
    if (command == "predict")
        return cmdPredict(options, out);
    if (command == "transfer")
        return cmdTransfer(options, out);
    if (command == "profile")
        return cmdProfile(options, out);
    if (command == "subset")
        return cmdSubset(options, out);
    if (command == "phases")
        return cmdPhases(options, out);
    if (command == "serve")
        return cmdServe(options, out, err);
    if (command == "query")
        return cmdQuery(options, out);

    err << "unknown command '" << command << "'\n";
    printUsage(err);
    return 2;
}

} // namespace wct
