/**
 * @file
 * Shared contract between the fuzz harnesses and their driver.
 *
 * Every harness under fuzz/harness/ defines exactly one entry point,
 * LLVMFuzzerTestOneInput, with libFuzzer's signature and semantics:
 * consume one untrusted byte buffer, return 0, and *never* crash,
 * leak, or trip a sanitizer on any input. Optional one-time setup
 * (starting an in-process server, creating a scratch directory) goes
 * in LLVMFuzzerInitialize.
 *
 * Two drivers can sit in front of that entry point:
 *
 *  - libFuzzer itself (clang, -fsanitize=fuzzer): coverage-guided
 *    mutation, the preferred engine when the toolchain has it.
 *  - fuzz/driver/driver.cc: a standalone main linked when libFuzzer
 *    is unavailable (e.g. gcc). It replays corpus files/directories
 *    given as arguments and, when asked via -runs= / -max_total_time=,
 *    runs a deterministic corpus-seeded mutation loop. It understands
 *    the subset of libFuzzer flags the ctest wiring uses, so the same
 *    command line works against either driver.
 *
 * The replay mode is what the always-on `fuzz-regress` ctest label
 * runs: every checked-in seed and every past crash input goes through
 * the harness in the plain build, so a fixed finding can never
 * regress silently.
 */

#ifndef WCT_FUZZ_DRIVER_HH
#define WCT_FUZZ_DRIVER_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

/**
 * Harness invariant check: always on, unlike assert(), which
 * RelWithDebInfo's NDEBUG would silently compile out of every fuzz
 * run. A failure aborts, so the driver (or libFuzzer) treats it
 * exactly like a crash and preserves the triggering input.
 */
#define WCT_FUZZ_ASSERT(cond) \
    do { \
        if (!(cond)) { \
            std::fprintf(stderr, \
                         "fuzz invariant failed: %s (%s:%d)\n", \
                         #cond, __FILE__, __LINE__); \
            std::abort(); \
        } \
    } while (0)

/** The harness entry point (libFuzzer's contract; must return 0). */
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

/**
 * Optional one-time harness setup, run before the first input. Weak
 * so harnesses without setup simply omit it (libFuzzer resolves it
 * the same way).
 */
extern "C" __attribute__((weak)) int
LLVMFuzzerInitialize(int *argc, char ***argv);

#endif // WCT_FUZZ_DRIVER_HH
