/**
 * @file
 * Standalone driver for the fuzz harnesses (see driver.hh): linked
 * instead of libFuzzer when the toolchain has no -fsanitize=fuzzer.
 *
 * Modes, chosen by the command line:
 *
 *  - Replay: every positional argument is a corpus file or directory;
 *    each regular file (dotfiles skipped) is fed to the harness once.
 *    This is the `fuzz-regress` ctest mode.
 *  - Mutation fuzzing: -runs=N and/or -max_total_time=S additionally
 *    run a deterministic, corpus-seeded mutation loop after the
 *    replay. Not coverage-guided — libFuzzer owns that — but the
 *    stacked byte/block/splice mutations with boundary-value
 *    injection reach deep into length-prefixed formats, and a fixed
 *    -seed makes any finding reproducible.
 *
 * On a fatal signal the driver writes the input being executed to
 * ./crash-<fnv1a64 hex> (async-signal-safe file I/O only) before
 * re-raising, so a finding can be checked straight into
 * fuzz/crashes/<harness>/ as a regression input.
 *
 * Flag syntax follows libFuzzer (-flag=value); unknown flags are
 * ignored with a note so shared ctest command lines keep working
 * against either driver.
 */

#include "fuzz/driver/driver.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

namespace
{

namespace fs = std::filesystem;

/** Input currently inside the harness, for the crash dumper. */
const std::uint8_t *gCurrentData = nullptr;
std::size_t gCurrentSize = 0;

/** splitmix64: tiny, seedable, and plenty for mutation scheduling. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Async-signal-safe: dump the in-flight input, then re-raise. */
extern "C" void
crashHandler(int sig)
{
    char path[64];
    std::uint64_t hash = fnv1a(gCurrentData, gCurrentSize);
    std::memcpy(path, "crash-", 6);
    for (int i = 15; i >= 0; --i) {
        path[6 + i] = "0123456789abcdef"[hash & 0xf];
        hash >>= 4;
    }
    path[22] = '\0';
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
        std::size_t done = 0;
        while (done < gCurrentSize) {
            const ssize_t n = ::write(fd, gCurrentData + done,
                                      gCurrentSize - done);
            if (n <= 0)
                break;
            done += static_cast<std::size_t>(n);
        }
        ::close(fd);
        const char msg[] = "driver: crashing input written to ./";
        (void)!::write(2, msg, sizeof msg - 1);
        (void)!::write(2, path, 22);
        (void)!::write(2, "\n", 1);
    }
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

void
runOne(const std::uint8_t *data, std::size_t size)
{
    gCurrentData = data;
    gCurrentSize = size;
    LLVMFuzzerTestOneInput(data, size);
}

/** Collect regular files under a path; dotfiles (.gitkeep) skipped. */
void
collectFiles(const fs::path &path, std::vector<fs::path> &out)
{
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (const auto &entry :
             fs::recursive_directory_iterator(path, ec)) {
            if (entry.is_regular_file() &&
                entry.path().filename().string().front() != '.')
                out.push_back(entry.path());
        }
        return;
    }
    if (fs::is_regular_file(path, ec))
        out.push_back(path);
    else
        std::fprintf(stderr, "driver: ignoring missing path '%s'\n",
                     path.string().c_str());
}

/** Boundary values a length-prefixed format cares about. */
constexpr std::uint64_t kInterestingU64[] = {
    0,
    1,
    0x7full,
    0xffull,
    0x100ull,
    0xffffull,
    1ull << 20,
    1ull << 23,
    1ull << 28, // kMaxFramePayload
    (1ull << 28) + 1,
    1ull << 30, // kMaxFilePayload
    (1ull << 30) + 1,
    1ull << 40,
    0x7fffffffffffffffull,
    0xffffffffffffffffull,
};

/** One stacked mutation step over `bytes`, in place. */
void
mutateOnce(std::string &bytes, std::uint64_t &rng,
           const std::vector<std::string> &corpus)
{
    const auto pick = [&](std::size_t bound) {
        return bound == 0 ? 0 : nextRand(rng) % bound;
    };
    switch (nextRand(rng) % 8) {
      case 0: // flip one bit
        if (!bytes.empty()) {
            const std::size_t i = pick(bytes.size());
            bytes[i] = static_cast<char>(
                bytes[i] ^ (1u << (nextRand(rng) % 8)));
        }
        break;
      case 1: // overwrite one byte with an extreme
        if (!bytes.empty())
            bytes[pick(bytes.size())] = static_cast<char>(
                kInterestingU64[pick(std::size(kInterestingU64))]);
        break;
      case 2: { // overwrite 4 or 8 bytes with an interesting integer
        const std::size_t width = nextRand(rng) % 2 == 0 ? 4 : 8;
        if (bytes.size() >= width) {
            const std::uint64_t v =
                kInterestingU64[pick(std::size(kInterestingU64))];
            std::memcpy(bytes.data() + pick(bytes.size() - width + 1),
                        &v, width);
        }
        break;
      }
      case 3: // erase a block
        if (!bytes.empty()) {
            const std::size_t from = pick(bytes.size());
            bytes.erase(from, pick(bytes.size() - from) + 1);
        }
        break;
      case 4: { // insert random bytes
        std::string blob(pick(16) + 1, '\0');
        for (char &c : blob)
            c = static_cast<char>(nextRand(rng));
        bytes.insert(pick(bytes.size() + 1), blob);
        break;
      }
      case 5: // duplicate a block (length-field confusion fodder)
        if (!bytes.empty()) {
            const std::size_t from = pick(bytes.size());
            const std::size_t len =
                pick(std::min<std::size_t>(bytes.size() - from, 64)) +
                1;
            bytes.insert(pick(bytes.size() + 1),
                         bytes.substr(from, len));
        }
        break;
      case 6: // truncate
        bytes.resize(pick(bytes.size() + 1));
        break;
      case 7: // splice with another corpus entry
        if (!corpus.empty()) {
            const std::string &other = corpus[pick(corpus.size())];
            const std::size_t cut = pick(bytes.size() + 1);
            bytes = bytes.substr(0, cut) +
                    other.substr(pick(other.size() + 1));
        }
        break;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t runs = 0;
    std::uint64_t maxTotalTime = 0;
    std::uint64_t seed = 0x5eedf022ull;
    std::size_t maxLen = 1 << 16;
    std::vector<fs::path> files;

    if (LLVMFuzzerInitialize != nullptr)
        LLVMFuzzerInitialize(&argc, &argv);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind('-', 0) != 0) {
            collectFiles(arg, files);
            continue;
        }
        const auto eq = arg.find('=');
        const std::string name = arg.substr(0, eq);
        const std::uint64_t value =
            eq == std::string::npos
                ? 0
                : std::strtoull(arg.c_str() + eq + 1, nullptr, 0);
        if (name == "-runs")
            runs = value;
        else if (name == "-max_total_time")
            maxTotalTime = value;
        else if (name == "-seed")
            seed = value;
        else if (name == "-max_len")
            maxLen = std::max<std::size_t>(value, 16);
        else if (name == "-help") {
            std::printf(
                "usage: %s [-runs=N] [-max_total_time=SECONDS] "
                "[-seed=N] [-max_len=N] [corpus file or dir]...\n"
                "Replays every corpus input; with -runs or "
                "-max_total_time, then fuzzes them with stacked "
                "deterministic mutations.\n",
                argv[0]);
            return 0;
        } else
            std::fprintf(stderr,
                         "driver: ignoring unknown flag '%s'\n",
                         arg.c_str());
    }

    for (const int sig :
         {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
        ::signal(sig, crashHandler);

    // Stable order: determinism must not depend on readdir order.
    std::sort(files.begin(), files.end());

    std::vector<std::string> corpus;
    corpus.reserve(files.size());
    for (const fs::path &file : files) {
        std::ifstream in(file, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        runOne(reinterpret_cast<const std::uint8_t *>(bytes.data()),
               bytes.size());
        corpus.push_back(std::move(bytes));
    }
    std::fprintf(stderr, "driver: replayed %zu corpus inputs\n",
                 corpus.size());

    std::uint64_t execs = 0;
    if (runs > 0 || maxTotalTime > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::seconds(maxTotalTime);
        std::uint64_t rng = seed;
        std::string input;
        while (true) {
            if (runs > 0 && execs >= runs)
                break;
            if (maxTotalTime > 0 && execs % 128 == 0 &&
                std::chrono::steady_clock::now() >= deadline)
                break;
            if (runs == 0 && maxTotalTime == 0)
                break;
            input = corpus.empty()
                        ? std::string()
                        : corpus[nextRand(rng) % corpus.size()];
            const std::size_t depth = nextRand(rng) % 4 + 1;
            for (std::size_t d = 0; d < depth; ++d)
                mutateOnce(input, rng, corpus);
            if (input.size() > maxLen)
                input.resize(maxLen);
            runOne(
                reinterpret_cast<const std::uint8_t *>(input.data()),
                input.size());
            ++execs;
            if (execs % 100000 == 0)
                std::fprintf(stderr, "driver: %llu execs\n",
                             static_cast<unsigned long long>(execs));
        }
    }
    std::fprintf(stderr,
                 "driver: done (%zu replayed, %llu mutated execs)\n",
                 corpus.size(),
                 static_cast<unsigned long long>(execs));
    return 0;
}
