/**
 * @file
 * Deterministic seed-corpus generator: `wct_fuzz_corpus_gen <root>`
 * writes the seed inputs for every fuzz harness under
 * <root>/<harness>/, using the *real* writers (writeEnvelope,
 * writeDatasetBinary, writeSuiteData, encodeRequest/encodeResponse,
 * ModelTree::save, ArtifactStore::store) so mutation starts at the
 * valid-input frontier instead of spending its budget rediscovering
 * magics and checksums.
 *
 * Everything is seeded and pinned: rerunning the tool reproduces the
 * checked-in fuzz/corpus/ tree byte for byte (`git diff` after a run
 * is the review surface for corpus changes, exactly like goldens).
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/suite_io.hh"
#include "data/artifact_store.hh"
#include "data/binary_io.hh"
#include "data/store_wire.hh"
#include "mtree/model_tree.hh"
#include "mtree/serialize.hh"
#include "serve/wire.hh"
#include "util/rng.hh"

namespace
{

using namespace wct;
namespace fs = std::filesystem;

int written = 0;

void
emit(const fs::path &root, const std::string &harness,
     const std::string &name, const std::string &bytes)
{
    const fs::path dir = root / harness;
    fs::create_directories(dir);
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
        std::cerr << "corpus_gen: cannot write " << (dir / name)
                  << "\n";
        std::exit(1);
    }
    ++written;
}

Dataset
sampleDataset(std::size_t rows, std::uint64_t seed)
{
    Dataset data({"IPC", "L1D_MISS", "CPI"});
    Rng rng(seed);
    for (std::size_t i = 0; i < rows; ++i)
        data.addRow({rng.uniform(0.0, 4.0), rng.uniform(0.0, 0.2),
                     rng.uniform(0.4, 3.0)});
    return data;
}

std::string
datasetBytes(const Dataset &data)
{
    std::ostringstream out;
    writeDatasetBinary(out, data);
    return out.str();
}

std::string
suiteBytes()
{
    SuiteData suite;
    suite.suiteName = "fuzz-suite";
    for (int b = 0; b < 2; ++b) {
        BenchmarkData bench;
        bench.name = "bench." + std::to_string(b);
        bench.instructionWeight = 0.5 + 0.25 * b;
        bench.samples = sampleDataset(4, 100 + b);
        suite.benchmarks.push_back(std::move(bench));
    }
    std::ostringstream out;
    writeSuiteData(out, suite);
    return out.str();
}

ModelTree
miniTree(std::uint64_t seed, std::size_t rows)
{
    Dataset data({"x0", "x1", "y"});
    Rng rng(seed);
    for (std::size_t i = 0; i < rows; ++i) {
        const double x0 = rng.uniform(0.0, 1.0);
        const double x1 = rng.uniform(0.0, 1.0);
        data.addRow({x0, x1, x0 <= 0.5 ? 1.0 + 2.0 * x1 : 6.0 - x1});
    }
    return ModelTree::train(data, "y");
}

std::string
treeText(const ModelTree &tree)
{
    std::ostringstream out;
    tree.save(out);
    return out.str();
}

void
envelopeSeeds(const fs::path &root)
{
    const std::string dataset = datasetBytes(sampleDataset(6, 7));
    emit(root, "fuzz_envelope", "dataset-small", dataset);
    emit(root, "fuzz_envelope", "dataset-empty-rows",
         datasetBytes(Dataset({"IPC", "CPI"})));
    emit(root, "fuzz_envelope", "dataset-truncated",
         dataset.substr(0, dataset.size() * 3 / 5));
    emit(root, "fuzz_envelope", "suite-mini", suiteBytes());
    std::ostringstream empty;
    writeEnvelope(empty, std::string_view(kDatasetMagic, 8),
                  kDatasetFormatVersion, "");
    emit(root, "fuzz_envelope", "empty-payload", empty.str());
}

void
wireSeeds(const fs::path &root)
{
    using namespace wct::serve;
    const Dataset rows = sampleDataset(3, 21);

    Request predict;
    predict.op = Opcode::Predict;
    predict.id = 1;
    predict.modelKey = "default";
    predict.schema = rows.columnNames();
    for (std::size_t r = 0; r < rows.numRows(); ++r)
        for (double v : rows.row(r))
            predict.rows.push_back(v);
    Request classify = predict;
    classify.op = Opcode::Classify;
    classify.id = 2;
    Request load;
    load.op = Opcode::LoadModel;
    load.id = 3;
    load.path = "/models/tree.mtree";
    load.alias = "prod";
    Request stats;
    stats.op = Opcode::Stats;
    stats.id = 4;
    Request shutdown;
    shutdown.op = Opcode::Shutdown;
    shutdown.id = 5;

    const auto payloadOf = [](const std::string &frame) {
        std::istringstream in(frame);
        return readFrame(in).value();
    };
    const auto seedBoth = [&](const std::string &name,
                              const std::string &frame) {
        emit(root, "fuzz_wire_frame", name + "-frame", frame);
        emit(root, "fuzz_wire_frame", name + "-payload",
             payloadOf(frame));
    };
    seedBoth("req-predict", encodeRequest(predict));
    seedBoth("req-classify", encodeRequest(classify));
    seedBoth("req-load", encodeRequest(load));
    seedBoth("req-stats", encodeRequest(stats));
    seedBoth("req-shutdown", encodeRequest(shutdown));

    Response ok;
    ok.op = Opcode::Predict;
    ok.id = 1;
    ok.cpi = {1.25, 2.5, 0.75};
    ok.leaf = {1, 3, 2};
    seedBoth("resp-predict", encodeResponse(ok));
    Response error;
    error.op = Opcode::Classify;
    error.id = 2;
    error.status = Status::Overloaded;
    error.error = "queue full";
    seedBoth("resp-error", encodeResponse(error));

    // Session streams: whole client conversations, valid and broken.
    const std::string predictFrame = encodeRequest(predict);
    emit(root, "fuzz_serve_session", "stats-only",
         encodeRequest(stats));
    emit(root, "fuzz_serve_session", "predict-then-stats",
         predictFrame + encodeRequest(stats));
    emit(root, "fuzz_serve_session", "classify-then-garbage",
         encodeRequest(classify) +
             std::string("\x7fGARBAGE\x00\x01\x02", 11));
    emit(root, "fuzz_serve_session", "load-then-shutdown",
         encodeRequest(load) + encodeRequest(shutdown));
    emit(root, "fuzz_serve_session", "predict-truncated",
         predictFrame.substr(0, predictFrame.size() - 9));

    // Reassembly seeds for the interleaved multi-connection session:
    // half-frames butted against whole frames, so the round-robin
    // chunking deals mid-frame splits across connections.
    const std::string statsFrame = encodeRequest(stats);
    emit(root, "fuzz_serve_session", "half-predict-then-stats",
         predictFrame.substr(0, predictFrame.size() / 2) +
             statsFrame);
    emit(root, "fuzz_serve_session", "stats-then-half-classify",
         statsFrame + encodeRequest(classify).substr(
                          0, encodeRequest(classify).size() / 2));
    emit(root, "fuzz_serve_session", "two-half-frames",
         predictFrame.substr(0, predictFrame.size() / 2) +
             statsFrame.substr(0, statsFrame.size() / 2));
}

void
treeSeeds(const fs::path &root)
{
    emit(root, "fuzz_tree_text", "tree-trained",
         treeText(miniTree(1, 400)));
    emit(root, "fuzz_tree_text", "tree-single-leaf",
         treeText(miniTree(2, 12)));
    emit(root, "fuzz_tree_text", "tree-handwritten",
         "wct-model-tree v1\n"
         "target y\n"
         "schema 2 x y\n"
         "range 0 10 1 1\n"
         "node split 0 0.5 4 2\n"
         "node leaf 2 1 1 1 0 0.25\n"
         "node leaf 2 3 3 0\n"
         "end\n");
}

void
artifactSeeds(const fs::path &root)
{
    // The harness loads every input under ("fuzz", 0xf00dfeedd00d);
    // seed one artifact at that address (accepted) and one under a
    // different kind (the address-mismatch rejection path). Write
    // through the real store, then lift the file bytes.
    const ArtifactId match{"fuzz", 0xf00dfeedd00dull};
    const ArtifactId mismatch{"other", 0xf00dfeedd00dull};
    const fs::path scratch = root / ".corpus_gen_scratch";
    ArtifactStore store(scratch.string());
    const auto fileBytes = [&](const ArtifactId &id,
                               const std::string &payload) {
        if (!store.store(id, payload)) {
            std::cerr << "corpus_gen: artifact store failed\n";
            std::exit(1);
        }
        std::ifstream in(store.path(id), std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    };
    emit(root, "fuzz_artifact_store", "artifact-match",
         fileBytes(match, datasetBytes(sampleDataset(5, 33))));
    emit(root, "fuzz_artifact_store", "artifact-mismatched-kind",
         fileBytes(mismatch, "payload under the wrong kind"));
    emit(root, "fuzz_artifact_store", "artifact-tree-payload",
         fileBytes(match, treeText(miniTree(3, 60))));
    fs::remove_all(scratch);
}

void
storeSeeds(const fs::path &root)
{
    // WCTSTOR frames through the real encoders, plus whole hostile
    // session streams, mirroring the fuzz_serve_session layout.
    StoreRequest load;
    load.op = StoreOp::Load;
    load.id = 1;
    load.artifact = {"collect-shard", 0x1122334455667788ull};
    StoreRequest store;
    store.op = StoreOp::Store;
    store.id = 2;
    store.artifact = {"mtree", fnv1a64("stored tree text")};
    store.payload = "stored tree text";
    StoreRequest gc;
    gc.op = StoreOp::Gc;
    gc.id = 3;
    gc.graceSeconds = 300;
    gc.live = {{"collect-shard", 0x1122334455667788ull},
               {"train", 0xfeedull}};
    StoreRequest ping;
    ping.op = StoreOp::Ping;
    ping.id = 4;
    StoreRequest shutdown;
    shutdown.op = StoreOp::Shutdown;
    shutdown.id = 5;
    StoreRequest list;
    list.op = StoreOp::List;
    list.id = 6;

    const auto payloadOf = [](const std::string &frame) {
        std::istringstream in(frame);
        return readStoreFrame(in).value();
    };
    const auto seedBoth = [&](const std::string &name,
                              const std::string &frame) {
        emit(root, "fuzz_store_wire", name + "-frame", frame);
        emit(root, "fuzz_store_wire", name + "-payload",
             payloadOf(frame));
    };
    seedBoth("req-load", encodeStoreRequest(load));
    seedBoth("req-store", encodeStoreRequest(store));
    seedBoth("req-gc", encodeStoreRequest(gc));
    seedBoth("req-ping", encodeStoreRequest(ping));
    seedBoth("req-shutdown", encodeStoreRequest(shutdown));
    seedBoth("req-list", encodeStoreRequest(list));

    StoreResponse loaded;
    loaded.op = StoreOp::Load;
    loaded.id = 1;
    loaded.payload = "artifact bytes";
    seedBoth("resp-load", encodeStoreResponse(loaded));
    StoreResponse missing;
    missing.op = StoreOp::Load;
    missing.id = 2;
    missing.status = StoreStatus::NotFound;
    missing.error = "no such artifact";
    seedBoth("resp-not-found", encodeStoreResponse(missing));
    StoreResponse listing;
    listing.op = StoreOp::List;
    listing.id = 6;
    ArtifactInfo info;
    info.id = {"train", 0xfeedull};
    info.fileBytes = 512;
    listing.artifacts.push_back(info);
    seedBoth("resp-list", encodeStoreResponse(listing));

    // Session streams: whole client conversations, valid and broken.
    const std::string storeFrame = encodeStoreRequest(store);
    emit(root, "fuzz_store_wire", "session-store-then-load",
         storeFrame + encodeStoreRequest(load));
    emit(root, "fuzz_store_wire", "session-ping-gc",
         encodeStoreRequest(ping) + encodeStoreRequest(gc));
    emit(root, "fuzz_store_wire", "session-store-truncated",
         storeFrame.substr(0, storeFrame.size() - 7));
    emit(root, "fuzz_store_wire", "session-store-then-garbage",
         storeFrame + std::string("\x7fGARBAGE\x00\x01\x02", 11));

    // Reassembly seeds for the interleaved multi-connection session.
    const std::string pingFrame = encodeStoreRequest(ping);
    emit(root, "fuzz_store_wire", "session-half-store-then-ping",
         storeFrame.substr(0, storeFrame.size() / 2) + pingFrame);
    emit(root, "fuzz_store_wire", "session-two-half-frames",
         storeFrame.substr(0, storeFrame.size() / 2) +
             pingFrame.substr(0, pingFrame.size() / 2));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::cerr << "usage: wct_fuzz_corpus_gen <corpus-root>\n";
        return 2;
    }
    const fs::path root = argv[1];
    envelopeSeeds(root);
    wireSeeds(root);
    treeSeeds(root);
    artifactSeeds(root);
    storeSeeds(root);
    std::cout << "corpus_gen: wrote " << written
              << " seed inputs under " << root << "\n";
    return 0;
}
