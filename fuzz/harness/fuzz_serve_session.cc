/**
 * @file
 * Fuzz harness for a live serving session: every input is one raw
 * client byte stream written into a real SocketServer connection
 * (accept thread, per-connection worker, FdStreambuf framing,
 * Server dispatch, response write-back) — the full "bad clients never
 * kill the server" surface, not just the codec underneath it.
 *
 * Per input: connect to the in-process AF_UNIX server, write the
 * bytes, half-close, and drain whatever responses come back until the
 * server closes the connection. Then the availability invariant: a
 * fresh, well-behaved client sends a stats request and must get an Ok
 * response — if hostile bytes wedged a worker, leaked the connection
 * slot, or killed the server, this probe fails the run.
 */

#include "fuzz/driver/driver.hh"

#include <algorithm>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "mtree/model_tree.hh"
#include "mtree/serialize.hh"
#include "serve/server.hh"
#include "serve/socket.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace
{

using namespace wct;
using namespace wct::serve;

/** Everything the harness keeps alive across inputs. */
struct LiveService
{
    Server server;
    SocketServer socket;
    std::string path;

    explicit LiveService(const std::string &sockPath)
        : server(serverConfig()), socket(server, socketConfig(sockPath)),
          path(sockPath)
    {
        // A real model makes mutated predict/classify frames reach
        // the batch engine instead of stopping at "model not found".
        Dataset data({"x0", "x1", "y"});
        Rng rng(42);
        for (int i = 0; i < 300; ++i) {
            const double x0 = rng.uniform(0.0, 1.0);
            const double x1 = rng.uniform(0.0, 1.0);
            data.addRow({x0, x1, x0 <= 0.5 ? 1.0 + x1 : 4.0 - x1});
        }
        const ModelTree tree = ModelTree::train(data, "y");
        const std::string model = path + ".mtree";
        writeModelTreeFile(tree, model);
        std::string err;
        if (!server.loadModel(model, "default", nullptr, &err)) {
            std::fprintf(stderr, "harness: loadModel failed: %s\n",
                         err.c_str());
            std::abort();
        }
        if (!socket.start(&err)) {
            std::fprintf(stderr, "harness: start failed: %s\n",
                         err.c_str());
            std::abort();
        }
    }

    static ServerConfig
    serverConfig()
    {
        ServerConfig config;
        config.queueDepth = 16;
        config.maxBatch = 4;
        config.allowRemoteLoad = false;
        config.allowRemoteShutdown = false; // one mutated shutdown
                                            // must not end the run
        return config;
    }

    static SocketConfig
    socketConfig(const std::string &sockPath)
    {
        SocketConfig config;
        config.unixPath = sockPath;
        config.maxConnections = 8;
        return config;
    }
};

LiveService &
service()
{
    static LiveService live("/tmp/wct_fuzz_serve." +
                            std::to_string(::getpid()) + ".sock");
    return live;
}

/** Write the raw bytes as a client would, then drain to EOF. */
void
rawSession(const std::string &path, const std::uint8_t *data,
           std::size_t size)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    WCT_FUZZ_ASSERT(fd >= 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    WCT_FUZZ_ASSERT(path.size() < sizeof addr.sun_path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return; // transient (cap churn); the probe below still runs
    }
    // Bound every read so a wedged server cannot hang the harness
    // here; wedging is detected by the probe, not by this drain.
    timeval timeout = {2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof timeout);
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n =
            ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n <= 0)
            break; // server dropped the connection mid-write: fine
        done += static_cast<std::size_t>(n);
    }
    ::shutdown(fd, SHUT_WR);
    char sink[4096];
    while (::read(fd, sink, sizeof sink) > 0) {
    }
    ::close(fd);
}

/**
 * Interleaved partial-frame coverage for the reactor's reassembly
 * buffers: the input is dealt out round-robin in small chunks across
 * three simultaneous connections, so each connection receives its own
 * (usually mid-frame) subsequence while the event loop holds several
 * half-built frames at once. One connection aborts hard — close with
 * no half-close and no drain — mid-stream, exercising teardown of a
 * connection whose buffer still holds a partial frame.
 */
void
interleavedSession(const std::string &path, const std::uint8_t *data,
                   std::size_t size)
{
    constexpr std::size_t kConns = 3;
    int fds[kConns];
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    WCT_FUZZ_ASSERT(path.size() < sizeof addr.sun_path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const timeval timeout = {2, 0};
    for (std::size_t c = 0; c < kConns; ++c) {
        fds[c] = ::socket(AF_UNIX, SOCK_STREAM, 0);
        WCT_FUZZ_ASSERT(fds[c] >= 0);
        if (::connect(fds[c],
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) != 0) {
            ::close(fds[c]);
            fds[c] = -1; // transient (cap churn); keep going
            continue;
        }
        ::setsockopt(fds[c], SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof timeout);
    }

    std::size_t off = 0, turn = 0;
    while (off < size) {
        // Chunk length comes from the input itself so the mutator
        // controls where frames split across writes.
        const std::size_t chunk =
            std::min<std::size_t>(1 + data[off] % 37, size - off);
        const std::size_t c = turn++ % kConns;
        if (fds[c] >= 0 &&
            ::send(fds[c], data + off, chunk, MSG_NOSIGNAL) <= 0) {
            ::close(fds[c]); // server dropped it mid-write: fine
            fds[c] = -1;
        }
        off += chunk;
        // The abort connection hangs up as soon as it has bytes
        // buffered server-side, likely mid-frame.
        if (turn == kConns + 1 && fds[kConns - 1] >= 0) {
            ::close(fds[kConns - 1]);
            fds[kConns - 1] = -1;
        }
    }
    for (std::size_t c = 0; c < kConns; ++c) {
        if (fds[c] < 0)
            continue;
        ::shutdown(fds[c], SHUT_WR);
        char sink[4096];
        while (::read(fds[c], sink, sizeof sink) > 0) {
        }
        ::close(fds[c]);
    }
}

/** The availability probe: a well-formed client must still be served. */
void
probeStillServing(const std::string &path)
{
    std::string err;
    auto client = ServeClient::connectUnix(path, &err);
    WCT_FUZZ_ASSERT(client.has_value());
    Request request;
    request.op = Opcode::Stats;
    request.id = 7;
    const auto response = client->call(request, &err);
    WCT_FUZZ_ASSERT(response.has_value());
    WCT_FUZZ_ASSERT(response->status == Status::Ok);
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    [[maybe_unused]] static const bool quiet = setLogQuiet(true);
    LiveService &live = service();
    rawSession(live.path, data, size);
    interleavedSession(live.path, data, size);
    probeStillServing(live.path);
    return 0;
}
