/**
 * @file
 * Fuzz harness for the model-tree text parser (tryReadModelTree):
 * depth bound, schema-size cap, per-node schema-index validation, and
 * leaf-model term caps, all against free-form hostile text.
 *
 * Invariant on top of "never crash": parse → save → parse → save is
 * a fixed point. A tree the parser accepts must serialize to text the
 * parser accepts again, byte-identically — otherwise a model that
 * round-trips through the registry or the artifact store would change
 * identity (the content key is the FNV-1a of the exact text bytes).
 */

#include "fuzz/driver/driver.hh"

#include <sstream>
#include <string>

#include "mtree/serialize.hh"
#include "util/logging.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    [[maybe_unused]] static const bool quiet = wct::setLogQuiet(true);
    std::istringstream in(
        std::string(reinterpret_cast<const char *>(data), size));
    const auto tree = wct::tryReadModelTree(in);
    if (!tree)
        return 0;

    std::ostringstream first;
    tree->save(first);
    std::istringstream again(first.str());
    const auto reparsed = wct::tryReadModelTree(again);
    WCT_FUZZ_ASSERT(reparsed.has_value());
    std::ostringstream second;
    reparsed->save(second);
    WCT_FUZZ_ASSERT(first.str() == second.str());
    return 0;
}
