/**
 * @file
 * Fuzz harness for the model-tree text parser (tryReadModelTree):
 * depth bound, schema-size cap, per-node schema-index validation, and
 * leaf-model term caps, all against free-form hostile text.
 *
 * Invariants on top of "never crash":
 *
 *  - parse → save → parse → save is a fixed point. A tree the parser
 *    accepts must serialize to text the parser accepts again,
 *    byte-identically — otherwise a model that round-trips through
 *    the registry or the artifact store would change identity (the
 *    content key is the FNV-1a of the exact text bytes).
 *
 *  - every accepted tree lowers into a CompiledTree whose scalar and
 *    block evaluation agree *bit for bit* with the interpreted walk
 *    on a synthetic probe batch (zeros, split-threshold neighborhood
 *    values, extremes, NaN). Parsing is the only way hostile data
 *    reaches the compiler, so the equivalence contract is fuzzed at
 *    the same boundary it is trusted behind (serving answers from
 *    the compiled form).
 */

#include "fuzz/driver/driver.hh"

#include <bit>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "mtree/compiled_tree.hh"
#include "mtree/serialize.hh"
#include "util/logging.hh"

namespace
{

/** Deterministic probe values cycled across the batch: boundary
 * magnets (0, ±0.5, 1), extremes, and NaN. */
constexpr double kProbeValues[] = {
    0.0,
    0.5,
    -0.5,
    1.0,
    -1.0,
    0.49999999,
    1e6,
    -1e6,
    std::numeric_limits<double>::infinity(),
    std::numeric_limits<double>::quiet_NaN(),
};

bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
        std::bit_cast<std::uint64_t>(b);
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    [[maybe_unused]] static const bool quiet = wct::setLogQuiet(true);
    std::istringstream in(
        std::string(reinterpret_cast<const char *>(data), size));
    const auto tree = wct::tryReadModelTree(in);
    if (!tree)
        return 0;

    std::ostringstream first;
    tree->save(first);
    std::istringstream again(first.str());
    const auto reparsed = wct::tryReadModelTree(again);
    WCT_FUZZ_ASSERT(reparsed.has_value());
    std::ostringstream second;
    reparsed->save(second);
    WCT_FUZZ_ASSERT(first.str() == second.str());

    // Compiled/interpreted equivalence on the reparsed tree. Wide
    // schemas make per-row probing quadratic in the input size, so
    // cap the batch cost, not the schema.
    const std::size_t cols = reparsed->schema().size();
    if (cols == 0 || cols > 4096)
        return 0;
    const wct::CompiledTree &compiled = reparsed->compiled();
    const std::size_t rows = 16;
    std::vector<double> batch(rows * cols);
    std::size_t v = 0;
    for (double &cell : batch) {
        cell = kProbeValues[v % std::size(kProbeValues)];
        v += 1 + v / 7; // vary the phase so rows differ
    }

    std::vector<double> cpi(rows);
    std::vector<std::uint32_t> leaf(rows);
    compiled.evaluateBlock(batch.data(), cols, rows, cpi.data(),
                           leaf.data());
    for (std::size_t r = 0; r < rows; ++r) {
        const std::span<const double> row(batch.data() + r * cols,
                                          cols);
        WCT_FUZZ_ASSERT(sameBits(compiled.predict(row),
                                 reparsed->predict(row)));
        WCT_FUZZ_ASSERT(compiled.classify(row) ==
                        reparsed->classify(row));
        WCT_FUZZ_ASSERT(sameBits(cpi[r], reparsed->predict(row)));
        WCT_FUZZ_ASSERT(leaf[r] == reparsed->classify(row));
    }
    return 0;
}
