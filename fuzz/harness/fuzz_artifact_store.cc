/**
 * @file
 * Fuzz harness for ArtifactStore::load: the input bytes are written
 * verbatim as a .wctart file under the store's address for a fixed
 * (kind, key), then loaded. This drives the whole untrusted-file
 * surface — envelope checks, the claimed-size cap, the embedded
 * (kind, key) self-identification, and the payload extraction.
 *
 * Invariants on top of "never crash":
 *  - a payload that loads survives store() → load() unchanged;
 *  - a loaded file always carries the id it was addressed by (a
 *    mutated kind/key prefix must be rejected, not served).
 */

#include "fuzz/driver/driver.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "data/artifact_store.hh"
#include "util/logging.hh"

namespace
{

using namespace wct;

/** Fixed address every input is loaded under. The corpus generator
 * uses the same id so seed inputs exercise the accept path. */
const ArtifactId &
fuzzId()
{
    static const ArtifactId id{"fuzz", 0xf00dfeedd00dull};
    return id;
}

ArtifactStore &
scratchStore()
{
    static ArtifactStore store = [] {
        const std::string dir =
            std::filesystem::temp_directory_path().string() +
            "/wct_fuzz_store." + std::to_string(::getpid());
        std::filesystem::create_directories(dir);
        return ArtifactStore(dir);
    }();
    return store;
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    [[maybe_unused]] static const bool quiet = setLogQuiet(true);
    ArtifactStore &store = scratchStore();

    {
        std::ofstream out(store.path(fuzzId()),
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(data),
                  static_cast<std::streamsize>(size));
    }
    const auto payload = store.load(fuzzId());
    if (payload) {
        // Accepted payloads must round-trip through the writer.
        WCT_FUZZ_ASSERT(store.store(fuzzId(), *payload));
        const auto reread = store.load(fuzzId());
        WCT_FUZZ_ASSERT(reread.has_value() && *reread == *payload);
    }
    return 0;
}
