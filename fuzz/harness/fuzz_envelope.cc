/**
 * @file
 * Fuzz harness for the untrusted on-disk decoders of data/binary_io
 * and core/suite_io: readEnvelope under every per-caller payload cap,
 * the dataset file reader, and the suite payload parser.
 *
 * Invariants checked on top of "never crash":
 *  - a payload accepted under cap C never exceeds C bytes;
 *  - an accepted payload survives a write-then-reread round trip;
 *  - an accepted dataset re-serializes to bytes that parse back to
 *    the same dataset (serializer/parser agreement).
 *
 * The raw parsers (parseDataset, parseSuiteDataPayload) are driven on
 * the *unenveloped* input too: mutated bytes almost never carry a
 * valid FNV-1a checksum, and the checksum must not shield the parsers
 * behind it from hostile bytes (a corrupt-but-checksummed file is
 * exactly what a buggy writer produces).
 */

#include "fuzz/driver/driver.hh"

#include <sstream>
#include <string>
#include <string_view>

#include "core/suite_io.hh"
#include "data/binary_io.hh"
#include "util/logging.hh"

namespace
{

using namespace wct;

void
checkEnvelope(std::string_view bytes, std::uint64_t cap)
{
    std::istringstream in{std::string(bytes)};
    const auto payload = readEnvelope(
        in, std::string_view(kDatasetMagic, 8), kDatasetFormatVersion,
        cap);
    if (!payload)
        return;
    WCT_FUZZ_ASSERT(payload->size() <= cap);
    // Round trip: re-sealing the payload must re-read identically.
    std::ostringstream sealed;
    writeEnvelope(sealed, std::string_view(kDatasetMagic, 8),
                  kDatasetFormatVersion, *payload);
    std::istringstream again(sealed.str());
    const auto reread = readEnvelope(
        again, std::string_view(kDatasetMagic, 8),
        kDatasetFormatVersion, cap);
    WCT_FUZZ_ASSERT(reread.has_value() && *reread == *payload);
}

void
checkDatasetFile(std::string_view bytes)
{
    std::istringstream in{std::string(bytes)};
    const auto data = readDatasetBinary(in);
    if (!data)
        return;
    std::ostringstream out;
    writeDatasetBinary(out, *data);
    std::istringstream back(out.str());
    const auto reread = readDatasetBinary(back);
    WCT_FUZZ_ASSERT(reread.has_value());
    std::ostringstream out2;
    writeDatasetBinary(out2, *reread);
    WCT_FUZZ_ASSERT(out.str() == out2.str());
}

void
checkRawParsers(std::string_view bytes)
{
    {
        ByteParser parser(bytes);
        const auto data = parseDataset(parser);
        if (data) {
            ByteSink sink;
            appendDataset(sink, *data);
            ByteParser again(sink.bytes());
            const auto reread = parseDataset(again);
            WCT_FUZZ_ASSERT(reread.has_value() && again.atEnd());
        }
    }
    {
        const auto suite = parseSuiteDataPayload(bytes);
        if (suite) {
            std::ostringstream out;
            writeSuiteData(out, *suite);
            std::istringstream back(out.str());
            WCT_FUZZ_ASSERT(readSuiteData(back).has_value());
        }
    }
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    [[maybe_unused]] static const bool quiet = setLogQuiet(true);
    const std::string_view bytes(
        reinterpret_cast<const char *>(data), size);
    // Every cap a real caller passes, plus degenerate tiny ones.
    for (const std::uint64_t cap :
         {std::uint64_t(0), std::uint64_t(16), std::uint64_t(4096),
          kMaxFilePayload})
        checkEnvelope(bytes, cap);
    checkDatasetFile(bytes);
    checkRawParsers(bytes);
    return 0;
}
