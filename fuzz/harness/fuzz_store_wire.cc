/**
 * @file
 * Fuzz harness for the artifact store daemon: every input is one raw
 * client byte stream written into a live `wct store serve` transport
 * (SocketServer with WCTSTOR framing, StoreService dispatch, a real
 * ArtifactStore underneath) — the full "hostile clients never kill
 * the fleet store" surface.
 *
 * Each input also runs through the codec invariants directly: a
 * payload decodeStoreRequest/decodeStoreResponse accepts must
 * re-encode to a payload that decodes to the same message (decoders
 * reject anything the encoders did not produce, so accept implies
 * canonical).
 *
 * After the hostile session, the availability probe: a fresh,
 * well-behaved client pings the daemon, publishes a *fresh* artifact
 * under a counter-derived key, and loads it back byte-identical. The
 * probe never reuses an address a previous (mutated) input could
 * have poisoned, so it fails only when hostile bytes actually wedged
 * a worker, leaked the connection slot, or corrupted dispatch. The
 * fixture daemon runs with remote shutdown disabled — a mutated
 * Shutdown frame must not end the run.
 */

#include "fuzz/driver/driver.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "data/binary_io.hh"
#include "data/remote_store.hh"
#include "data/store_wire.hh"
#include "serve/socket.hh"
#include "serve/store_service.hh"
#include "util/logging.hh"

namespace
{

using namespace wct;
using namespace wct::serve;

namespace fs = std::filesystem;

/** Everything the harness keeps alive across inputs. */
struct LiveStoreDaemon
{
    std::string dir;
    StoreService service;
    SocketServer socket;
    std::string path;

    explicit LiveStoreDaemon(const std::string &artifactDir,
                             const std::string &sockPath)
        : dir(artifactDir),
          service(ArtifactStore(artifactDir), serviceConfig()),
          socket(service, socketConfig(sockPath)), path(sockPath)
    {
        std::string err;
        if (!socket.start(&err)) {
            std::fprintf(stderr, "harness: start failed: %s\n",
                         err.c_str());
            std::abort();
        }
    }

    static StoreServiceConfig
    serviceConfig()
    {
        StoreServiceConfig config;
        config.allowRemoteShutdown = false; // one mutated shutdown
                                            // must not end the run
        return config;
    }

    static SocketConfig
    socketConfig(const std::string &sockPath)
    {
        SocketConfig config;
        config.unixPath = sockPath;
        config.maxConnections = 8;
        config.frameMagic = std::string(kStoreWireMagic, 8);
        config.frameVersion = kStoreWireFormatVersion;
        config.maxFramePayload = kMaxStoreFramePayload;
        return config;
    }
};

LiveStoreDaemon &
daemon()
{
    static const std::string base =
        "/tmp/wct_fuzz_store." + std::to_string(::getpid());
    static const bool made = fs::create_directories(base + ".dir");
    (void)made;
    static LiveStoreDaemon live(base + ".dir", base + ".sock");
    return live;
}

/** Accept-implies-canonical: decode, re-encode, decode again. */
void
codecInvariants(const std::uint8_t *data, std::size_t size)
{
    const std::string_view payload(
        reinterpret_cast<const char *>(data), size);

    if (const auto request = decodeStoreRequest(payload)) {
        const std::string frame = encodeStoreRequest(*request);
        std::istringstream in(frame);
        const auto reread = readStoreFrame(in);
        WCT_FUZZ_ASSERT(reread.has_value());
        const auto again = decodeStoreRequest(*reread);
        WCT_FUZZ_ASSERT(again.has_value());
        WCT_FUZZ_ASSERT(again->op == request->op);
        WCT_FUZZ_ASSERT(again->id == request->id);
        WCT_FUZZ_ASSERT(again->artifact.kind == request->artifact.kind);
        WCT_FUZZ_ASSERT(again->artifact.key == request->artifact.key);
        WCT_FUZZ_ASSERT(again->payload == request->payload);
        WCT_FUZZ_ASSERT(again->live.size() == request->live.size());
        WCT_FUZZ_ASSERT(again->graceSeconds == request->graceSeconds);
    }
    if (const auto response = decodeStoreResponse(payload)) {
        const std::string frame = encodeStoreResponse(*response);
        std::istringstream in(frame);
        const auto reread = readStoreFrame(in);
        WCT_FUZZ_ASSERT(reread.has_value());
        const auto again = decodeStoreResponse(*reread);
        WCT_FUZZ_ASSERT(again.has_value());
        WCT_FUZZ_ASSERT(again->op == response->op);
        WCT_FUZZ_ASSERT(again->status == response->status);
        WCT_FUZZ_ASSERT(again->payload == response->payload);
        WCT_FUZZ_ASSERT(again->artifacts.size() ==
                        response->artifacts.size());
        WCT_FUZZ_ASSERT(again->removed.size() ==
                        response->removed.size());
    }
}

/** Write the raw bytes as a client would, then drain to EOF. */
void
rawSession(const std::string &path, const std::uint8_t *data,
           std::size_t size)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    WCT_FUZZ_ASSERT(fd >= 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    WCT_FUZZ_ASSERT(path.size() < sizeof addr.sun_path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return; // transient (cap churn); the probe below still runs
    }
    // Bound every read so a wedged daemon cannot hang the harness
    // here; wedging is detected by the probe, not by this drain.
    timeval timeout = {2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof timeout);
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n =
            ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n <= 0)
            break; // daemon dropped the connection mid-write: fine

        done += static_cast<std::size_t>(n);
        // Mid-transfer disconnect coverage: roughly one input in
        // eight hangs up after the first chunk without half-closing.
        if ((size ^ done) % 8 == 0 && done < size)
            break;
    }
    ::shutdown(fd, SHUT_WR);
    char sink[4096];
    while (::read(fd, sink, sizeof sink) > 0) {
    }
    ::close(fd);
}

/**
 * Interleaved partial-frame coverage for the reactor's reassembly
 * buffers (same shape as fuzz_serve_session): the input is dealt out
 * round-robin in small chunks across three simultaneous connections,
 * so the event loop holds several half-built WCTSTOR frames at once;
 * one connection aborts hard mid-stream with a partial frame still
 * buffered server-side.
 */
void
interleavedSession(const std::string &path, const std::uint8_t *data,
                   std::size_t size)
{
    constexpr std::size_t kConns = 3;
    int fds[kConns];
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    WCT_FUZZ_ASSERT(path.size() < sizeof addr.sun_path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const timeval timeout = {2, 0};
    for (std::size_t c = 0; c < kConns; ++c) {
        fds[c] = ::socket(AF_UNIX, SOCK_STREAM, 0);
        WCT_FUZZ_ASSERT(fds[c] >= 0);
        if (::connect(fds[c],
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) != 0) {
            ::close(fds[c]);
            fds[c] = -1; // transient (cap churn); keep going
            continue;
        }
        ::setsockopt(fds[c], SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof timeout);
    }

    std::size_t off = 0, turn = 0;
    while (off < size) {
        // Chunk length comes from the input itself so the mutator
        // controls where frames split across writes.
        const std::size_t chunk =
            std::min<std::size_t>(1 + data[off] % 37, size - off);
        const std::size_t c = turn++ % kConns;
        if (fds[c] >= 0 &&
            ::send(fds[c], data + off, chunk, MSG_NOSIGNAL) <= 0) {
            ::close(fds[c]); // daemon dropped it mid-write: fine
            fds[c] = -1;
        }
        off += chunk;
        // The abort connection hangs up as soon as it has bytes
        // buffered daemon-side, likely mid-frame.
        if (turn == kConns + 1 && fds[kConns - 1] >= 0) {
            ::close(fds[kConns - 1]);
            fds[kConns - 1] = -1;
        }
    }
    for (std::size_t c = 0; c < kConns; ++c) {
        if (fds[c] < 0)
            continue;
        ::shutdown(fds[c], SHUT_WR);
        char sink[4096];
        while (::read(fds[c], sink, sizeof sink) > 0) {
        }
        ::close(fds[c]);
    }
}

/**
 * The availability probe: ping, publish a fresh artifact, read it
 * back. The key is counter-derived so no earlier mutated Store can
 * have planted bytes at this address.
 */
void
probeStillServing(const std::string &path)
{
    static std::uint64_t counter = 0;
    ++counter;

    std::string err;
    const auto endpoint = parseStoreUrl("unix:" + path, &err);
    WCT_FUZZ_ASSERT(endpoint.has_value());
    auto client = StoreClient::connect(*endpoint, &err);
    WCT_FUZZ_ASSERT(client.has_value());

    StoreRequest ping;
    ping.op = StoreOp::Ping;
    ping.id = counter;
    const auto pong = client->call(ping, &err);
    WCT_FUZZ_ASSERT(pong.has_value());
    WCT_FUZZ_ASSERT(pong->status == StoreStatus::Ok);
    WCT_FUZZ_ASSERT(pong->id == ping.id);

    const std::string payload =
        "probe payload #" + std::to_string(counter);
    const ArtifactId id{"probe", fnv1a64(payload)};
    StoreRequest store;
    store.op = StoreOp::Store;
    store.id = counter + (1ull << 32);
    store.artifact = id;
    store.payload = payload;
    const auto stored = client->call(store, &err);
    WCT_FUZZ_ASSERT(stored.has_value());
    WCT_FUZZ_ASSERT(stored->status == StoreStatus::Ok);

    StoreRequest load;
    load.op = StoreOp::Load;
    load.id = counter + (2ull << 32);
    load.artifact = id;
    const auto loaded = client->call(load, &err);
    WCT_FUZZ_ASSERT(loaded.has_value());
    WCT_FUZZ_ASSERT(loaded->status == StoreStatus::Ok);
    WCT_FUZZ_ASSERT(loaded->payload == payload);
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    [[maybe_unused]] static const bool quiet = setLogQuiet(true);
    LiveStoreDaemon &live = daemon();
    codecInvariants(data, size);
    rawSession(live.path, data, size);
    interleavedSession(live.path, data, size);
    probeStillServing(live.path);
    return 0;
}
