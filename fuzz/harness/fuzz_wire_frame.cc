/**
 * @file
 * Fuzz harness for the serving wire protocol: readFrame, both payload
 * decoders, and the full request dispatch path of all five WCTSERV
 * ops through a live in-process Server (registry lookup, admission,
 * batch engine, response encoding).
 *
 * The input is interpreted twice:
 *  - as a raw *frame* through Server::handleFrame (envelope checks
 *    included), and
 *  - as a bare *payload* through decodeRequest / decodeResponse /
 *    Server::handlePayload — mutated bytes almost never carry a valid
 *    checksum, and the decoders may not rely on the envelope to have
 *    filtered hostile bytes (the loopback transport feeds them
 *    payloads directly).
 *
 * Invariant on top of "never crash": every response the server emits
 * must itself read back as one well-formed frame — a server that can
 * be provoked into emitting an undecodable response corrupts its own
 * clients.
 */

#include "fuzz/driver/driver.hh"

#include <sstream>
#include <string>
#include <string_view>

#include "serve/server.hh"
#include "serve/wire.hh"
#include "util/logging.hh"

namespace
{

using namespace wct;
using namespace wct::serve;

Server &
liveServer()
{
    // Remote load would turn fuzzer-chosen bytes into file probes and
    // remote shutdown would wedge every later input in ShuttingDown
    // responses; both stay exercised as their refusal paths.
    static Server server([] {
        ServerConfig config;
        config.queueDepth = 16;
        config.maxBatch = 4;
        config.allowRemoteLoad = false;
        config.allowRemoteShutdown = false;
        return config;
    }());
    return server;
}

/** A response frame must always decode; abort the run otherwise. */
void
checkResponseFrame(const std::string &frame)
{
    WCT_FUZZ_ASSERT(!frame.empty());
    std::istringstream in(frame);
    const auto payload = readFrame(in);
    WCT_FUZZ_ASSERT(payload.has_value());
    WCT_FUZZ_ASSERT(decodeResponse(*payload).has_value());
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    [[maybe_unused]] static const bool quiet = setLogQuiet(true);
    Server &server = liveServer();
    const std::string_view bytes(
        reinterpret_cast<const char *>(data), size);

    // Frame-level entry: envelope parsing plus dispatch.
    checkResponseFrame(server.handleFrame(bytes));

    // Payload-level entries: the decoders on naked hostile bytes.
    std::string err;
    if (decodeRequest(bytes, &err))
        checkResponseFrame(server.handlePayload(bytes));
    decodeResponse(bytes, &err);
    return 0;
}
